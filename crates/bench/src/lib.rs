//! Shared rigs for the benchmarks and the experiment harness.
//!
//! Every table in EXPERIMENTS.md is produced by code in this crate: the
//! Criterion benches in `benches/` measure hot paths in isolation, and
//! the `experiments` binary replays the paper's evaluation claims
//! end-to-end and prints the comparison tables.

pub mod report;

use da_alib::Connection;
use da_proto::command::DeviceCommand;
use da_proto::event::{Event, EventMask};
use da_proto::ids::{LoudId, SoundId, VDeviceId};
use da_proto::types::{DeviceClass, SoundType, WireType};
use da_server::{AudioServer, ServerConfig, ServerControl};
use std::time::Duration;

/// A server in manual-tick mode with one connected client: the engine
/// advances only when the caller says so, making measurements exact.
pub struct ManualRig {
    /// The running server.
    pub server: AudioServer,
    /// Control handle (ticking, speaker capture).
    pub control: ServerControl,
    /// The connected client.
    pub conn: Connection,
}

impl ManualRig {
    /// Starts the rig with the given hardware and quantum.
    pub fn new(hw: da_hw::registry::HwSpec, quantum_us: u64) -> ManualRig {
        let config = ServerConfig {
            manual_ticks: true,
            quantum_us,
            hw,
            ..ServerConfig::default()
        };
        let server = AudioServer::start(config).expect("server");
        let control = server.control();
        let conn = Connection::establish(server.connect_pipe(), "bench").expect("connect");
        ManualRig { server, control, conn }
    }

    /// Default: desktop hardware, 10 ms quantum.
    pub fn desktop() -> ManualRig {
        ManualRig::new(da_hw::registry::HwSpec::desktop(), 10_000)
    }

    /// Advances the engine by `n` ticks.
    pub fn tick(&self, n: u64) {
        self.control.tick_n(n);
    }
}

/// A player→output LOUD plus ids, built on any connection.
pub struct PlayRig {
    /// The root LOUD.
    pub loud: LoudId,
    /// The player.
    pub player: VDeviceId,
    /// The output.
    pub output: VDeviceId,
}

/// Builds and maps a player→output LOUD with queue events selected.
pub fn build_play_rig(conn: &mut Connection) -> PlayRig {
    let loud = conn.create_loud(None).expect("loud");
    let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).expect("player");
    let output = conn.create_vdevice(loud, DeviceClass::Output, vec![]).expect("output");
    conn.create_wire(player, 0, output, 0, WireType::Any).expect("wire");
    conn.select_events(loud, EventMask::QUEUE).expect("select");
    conn.select_events(player, EventMask::DEVICE).expect("select");
    conn.map_loud(loud).expect("map");
    conn.sync().expect("sync");
    PlayRig { loud, player, output }
}

/// Uploads a tone of `frames` frames at the telephone type.
pub fn upload_tone(conn: &mut Connection, freq: f64, frames: usize) -> SoundId {
    let pcm = da_dsp::tone::sine(8000, freq, frames, 10_000);
    conn.upload_pcm(SoundType::TELEPHONE, &pcm).expect("upload")
}

/// Enqueues a play and starts the queue (does not wait).
pub fn play(conn: &mut Connection, rig: &PlayRig, sound: SoundId) {
    conn.enqueue_cmd(rig.loud, rig.player, DeviceCommand::Play(sound)).expect("enqueue");
    conn.start_queue(rig.loud).expect("start");
}

/// Drains events until a `CommandDone` for `loud` arrives.
pub fn wait_done(conn: &mut Connection, loud: LoudId, timeout: Duration) {
    conn.wait_event(timeout, |e| {
        matches!(e, Event::CommandDone { loud: l, .. } if *l == loud)
    })
    .expect("command done");
}

/// Simple order statistics over microsecond samples.
#[derive(Debug, Clone, Copy)]
pub struct LatencyStats {
    /// Minimum.
    pub min_us: u64,
    /// Median.
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// Maximum.
    pub max_us: u64,
}

/// Computes order statistics from raw microsecond samples.
pub fn latency_stats(mut samples: Vec<u64>) -> LatencyStats {
    assert!(!samples.is_empty());
    samples.sort_unstable();
    let n = samples.len();
    LatencyStats {
        min_us: samples[0],
        p50_us: samples[n / 2],
        p95_us: samples[(n * 95 / 100).min(n - 1)],
        max_us: samples[n - 1],
    }
}
