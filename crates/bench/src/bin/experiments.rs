//! The experiment harness: regenerates every measurable claim of the
//! paper's evaluation (§6, §6.2) and prints paper-vs-measured tables.
//! EXPERIMENTS.md records a captured run.
//!
//! Run with `cargo run -p da-bench --bin experiments --release`.

use da_alib::Connection;
use da_bench::report::Report;
use da_bench::{build_play_rig, latency_stats, play, upload_tone, wait_done, ManualRig};
use da_proto::command::{DeviceCommand, RecordTermination};
use da_proto::event::{Event, EventMask};
use da_proto::types::{Attribute, DeviceClass, Encoding, SoundType, WireType};
use da_server::{AudioServer, ServerConfig};
use std::time::{Duration, Instant};

fn main() {
    // `--e5xl-smoke` runs only the CI regression gate: E5-XL start
    // latency at 256 clients, compared against the baseline recorded in
    // the committed BENCH_results.json (fail if p95 regressed > 2x).
    if std::env::args().any(|a| a == "--e5xl-smoke") {
        std::process::exit(e5xl_smoke());
    }
    // `--store-smoke` runs only the shared-sound-store CI gate: payload
    // memory at 256 clients playing one catalogue sound must stay within
    // 2x of the 1-client run (O(1) sharing, DESIGN.md §17).
    if std::env::args().any(|a| a == "--store-smoke") {
        std::process::exit(e9_store_smoke());
    }
    println!("desktop-audio experiment harness");
    println!("paper: Integrating Audio and Telephony in a Distributed Workstation");
    println!("Environment (USENIX Summer 1991), evaluation section 6\n");
    let mut report = Report::new();
    e1_start_latency(&mut report);
    e2_seamless_playback(&mut report);
    e3_cpu_fraction(&mut report);
    e4_play_record_seam(&mut report);
    e5_multiclient_scaling(&mut report);
    e5xl_connection_plane(&mut report);
    e6_streaming_jitter(&mut report);
    e7_sync_event_cadence(&mut report);
    e8_codecs(&mut report);
    e9_shared_store(&mut report);
    p1_quantum_ablation(&mut report);
    mc1_exploration_throughput(&mut report);
    match report.write_file("BENCH_results.json") {
        Ok(()) => println!("\nwrote {} records to BENCH_results.json", report.records().len()),
        Err(e) => eprintln!("\ncould not write BENCH_results.json: {e}"),
    }
    println!("all experiments complete");
}

fn banner(id: &str, claim: &str) {
    println!("────────────────────────────────────────────────────────────────");
    println!("{id}: {claim}");
}

// ---------------------------------------------------------------------------
// E1 — playback start latency (paper §6: "start playback of a sound, using
// an existing server connection, in less than several hundred milliseconds")
// ---------------------------------------------------------------------------
fn e1_start_latency(report: &mut Report) {
    banner("E1", "playback start latency < several hundred ms (paper goal)");
    let config = ServerConfig {
        pacing: da_hw::clock::Pacing::RealTime,
        quantum_us: 10_000,
        ..ServerConfig::default()
    };
    let server = AudioServer::start(config).expect("server");
    let mut conn = Connection::establish(server.connect_pipe(), "e1").expect("connect");
    let rig = build_play_rig(&mut conn);
    let sound = upload_tone(&mut conn, 440.0, 400); // 50 ms
    conn.sync().expect("sync");

    let trials = 100;
    let mut samples = Vec::with_capacity(trials);
    for _ in 0..trials {
        let t0 = Instant::now();
        play(&mut conn, &rig, sound);
        conn.wait_event(Duration::from_secs(5), |e| matches!(e, Event::PlayStarted { .. }))
            .expect("play started");
        samples.push(t0.elapsed().as_micros() as u64);
        wait_done(&mut conn, rig.loud, Duration::from_secs(5));
    }
    let s = latency_stats(samples);
    report.push("E1", "start_latency_min_us", s.min_us as f64, "us");
    report.push("E1", "start_latency_p50_us", s.p50_us as f64, "us");
    report.push("E1", "start_latency_p95_us", s.p95_us as f64, "us");
    report.push("E1", "start_latency_max_us", s.max_us as f64, "us");
    println!("  request→PlayStarted over an existing connection, {trials} trials:");
    println!(
        "  min {:.2} ms   median {:.2} ms   p95 {:.2} ms   max {:.2} ms",
        s.min_us as f64 / 1000.0,
        s.p50_us as f64 / 1000.0,
        s.p95_us as f64 / 1000.0,
        s.max_us as f64 / 1000.0
    );
    println!(
        "  paper goal: < \"several hundred\" ms    measured p95: {:.1} ms    {}",
        s.p95_us as f64 / 1000.0,
        if s.p95_us < 300_000 { "PASS" } else { "FAIL" }
    );
    server.shutdown();
}

// ---------------------------------------------------------------------------
// E2 — seamless back-to-back playback (paper §6.2: "without a single
// dropped or inserted sample")
// ---------------------------------------------------------------------------
fn e2_seamless_playback(report: &mut Report) {
    banner("E2", "back-to-back plays: zero dropped or inserted samples (§6.2)");
    println!("  N sounds | total frames | discontinuities | verdict");
    for n in [2usize, 4, 8, 16, 32, 64] {
        let rig = ManualRig::desktop();
        let mut conn = rig.conn;
        let control = rig.control;
        control.set_speaker_capture(0, 1 << 20);
        let play_rig = build_play_rig(&mut conn);

        // A strictly increasing staircase split into n uneven pieces; any
        // seam error breaks the sample-exact match of the capture.
        let total = 800 * n;
        let ramp: Vec<i16> = (0..total).map(|i| ((i * 10) % 30_000) as i16 + 100).collect();
        let expect = da_dsp::mulaw::decode_slice(&da_dsp::mulaw::encode_slice(&ramp));
        let mut sounds = Vec::new();
        let mut cut = 0usize;
        for k in 0..n {
            let next = if k == n - 1 {
                total
            } else {
                (cut + 800 + (k * 37) % 113).min(total)
            };
            let sound =
                conn.upload_pcm(SoundType::TELEPHONE, &ramp[cut..next]).expect("upload");
            sounds.push(sound);
            cut = next;
        }
        for s in &sounds {
            conn.enqueue_cmd(play_rig.loud, play_rig.player, DeviceCommand::Play(*s))
                .expect("enqueue");
        }
        conn.start_queue(play_rig.loud).expect("start");
        conn.sync().expect("sync");
        control.tick_n((total / 80 + 20) as u64);

        let cap = control.take_captured(0);
        // Align on an 8-sample signature of the staircase start.
        let sig = &expect[0..8];
        let start = cap.windows(8).position(|w| w == sig).unwrap_or(usize::MAX);
        let mut discontinuities = 0usize;
        if start == usize::MAX {
            discontinuities = total; // nothing matched at all
        } else {
            for (i, want) in expect.iter().enumerate() {
                if cap.get(start + i) != Some(want) {
                    discontinuities += 1;
                }
            }
        }
        report.push("E2", &format!("discontinuities_{n}_sounds"), discontinuities as f64, "samples");
        println!(
            "  {n:>8} | {total:>12} | {discontinuities:>15} | {}",
            if discontinuities == 0 { "PASS (gap-free)" } else { "FAIL" }
        );
    }
}

// ---------------------------------------------------------------------------
// E3 — CPU fraction vs data rate (paper §6: "well under 10% of the CPU";
// §1.1: 8,000 B/s telephone … 175,000 B/s CD)
// ---------------------------------------------------------------------------
fn e3_cpu_fraction(report: &mut Report) {
    banner("E3", "continuous playback CPU fraction across the paper's rate range");
    println!("  stream                         | bytes/s | CPU fraction | paper goal");
    let cases: Vec<(&str, SoundType, bool)> = vec![
        (
            "telephone 8 kHz u-law mono    ",
            SoundType::TELEPHONE,
            false,
        ),
        (
            "16 kHz PCM-16 mono            ",
            SoundType { encoding: Encoding::Pcm16, sample_rate: 16_000, channels: 1 },
            false,
        ),
        (
            "22.05 kHz PCM-16 mono         ",
            SoundType { encoding: Encoding::Pcm16, sample_rate: 22_050, channels: 1 },
            false,
        ),
        ("CD 44.1 kHz PCM-16 stereo     ", SoundType::CD, true),
    ];
    for (name, stype, hifi) in cases {
        let hw = if hifi {
            da_hw::registry::HwSpec::desktop_hifi()
        } else {
            da_hw::registry::HwSpec::desktop()
        };
        let rig = ManualRig::new(hw, 10_000);
        let mut conn = rig.conn;
        let control = rig.control;
        // Build a play rig targeting the right speaker.
        let loud = conn.create_loud(None).expect("loud");
        let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).expect("player");
        let out_attrs = if hifi { vec![Attribute::SampleRate(44_100)] } else { vec![] };
        let output = conn.create_vdevice(loud, DeviceClass::Output, out_attrs).expect("out");
        conn.create_wire(player, 0, output, 0, WireType::Any).expect("wire");
        conn.map_loud(loud).expect("map");

        // 10 s of audio at the stream's own type.
        let frames = stype.sample_rate as usize * 10;
        let pcm: Vec<i16> = {
            let mono = da_dsp::tone::sine(stype.sample_rate, 440.0, frames, 10_000);
            if stype.channels == 2 {
                mono.iter().flat_map(|&s| [s, s]).collect()
            } else {
                mono
            }
        };
        let sound = conn.upload_pcm(stype, &pcm).expect("upload");
        conn.enqueue_cmd(loud, player, DeviceCommand::Play(sound)).expect("enqueue");
        conn.start_queue(loud).expect("start");
        conn.sync().expect("sync");

        let before = control.stats();
        control.tick_n(1000); // exactly 10 s of audio time
        let after = control.stats();
        let busy = after.busy - before.busy;
        let fraction = busy.as_secs_f64() / 10.0;
        report.push(
            "E3",
            &format!("cpu_fraction_{}_bytes_per_s", stype.bytes_per_second()),
            fraction,
            "ratio",
        );
        println!(
            "  {name} | {:>7} | {:>11.3}% | {}",
            stype.bytes_per_second(),
            fraction * 100.0,
            if stype.bytes_per_second() == 8000 {
                if fraction < 0.10 { "<10%: PASS" } else { "<10%: FAIL" }
            } else {
                "(beyond 1991 goal)"
            }
        );
    }
}

// ---------------------------------------------------------------------------
// E4 — play→record transition (paper §6.2: "Recording back-to-back with a
// play is accomplished in the same manner" — sample-exact pre-issue)
// ---------------------------------------------------------------------------
fn e4_play_record_seam(report: &mut Report) {
    banner("E4", "play→record transition lands on the exact sample (§6.2)");
    println!("  play length (frames) | seam offset (frames) | recording continuous | verdict");
    for play_frames in [777u64, 1000, 1234, 4000] {
        let rig = ManualRig::desktop();
        let mut conn = rig.conn;
        let control = rig.control;

        // The microphone hears an index ramp: sample i has value i.
        let ramp: Vec<i16> = (0..32_000).map(|i| i as i16).collect();
        control.with_core(|c| {
            c.hw.microphones[0].set_source(da_hw::codec::SignalSource::Samples(ramp))
        });

        let loud = conn.create_loud(None).expect("loud");
        let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).expect("player");
        let output = conn.create_vdevice(loud, DeviceClass::Output, vec![]).expect("out");
        let input = conn.create_vdevice(loud, DeviceClass::Input, vec![]).expect("in");
        let recorder = conn.create_vdevice(loud, DeviceClass::Recorder, vec![]).expect("rec");
        conn.create_wire(player, 0, output, 0, WireType::Any).expect("wire");
        conn.create_wire(input, 0, recorder, 0, WireType::Any).expect("wire");

        let tone = upload_tone(&mut conn, 440.0, play_frames as usize);
        // Record losslessly so ramp indices survive.
        let rec_sound = conn
            .create_sound(SoundType {
                encoding: Encoding::Pcm16,
                sample_rate: 8000,
                channels: 1,
            })
            .expect("sound");
        conn.enqueue(
            loud,
            vec![
                da_proto::QueueEntry::Device { vdev: player, cmd: DeviceCommand::Play(tone) },
                da_proto::QueueEntry::Device {
                    vdev: recorder,
                    cmd: DeviceCommand::Record(rec_sound, RecordTermination::MaxFrames(2000)),
                },
            ],
        )
        .expect("enqueue");
        conn.start_queue(loud).expect("start");
        // Mapping LAST aligns queue start with the first microphone pull:
        // both begin on the activation tick.
        conn.map_loud(loud).expect("map");
        conn.sync().expect("sync");
        control.tick_n(play_frames / 80 + 40);

        let data = conn.read_sound_all(rec_sound).expect("read");
        let recorded = da_alib::connection::decode_from(
            SoundType { encoding: Encoding::Pcm16, sample_rate: 8000, channels: 1 },
            &data,
        );
        let first = recorded.first().copied().unwrap_or(-1) as i64;
        let offset = first - play_frames as i64;
        let continuous =
            recorded.windows(2).all(|w| w[1] as i64 - w[0] as i64 == 1);
        report.push("E4", &format!("seam_offset_{play_frames}_frames"), offset as f64, "frames");
        report.push(
            "E4",
            &format!("recording_continuous_{play_frames}_frames"),
            continuous as u8 as f64,
            "bool",
        );
        println!(
            "  {play_frames:>20} | {offset:>20} | {continuous:>20} | {}",
            if offset == 0 && continuous { "PASS (exact)" } else { "FAIL" }
        );
    }
}

// ---------------------------------------------------------------------------
// E5 — multiple simultaneous clients on one speaker (paper §2)
// ---------------------------------------------------------------------------
fn e5_multiclient_scaling(report: &mut Report) {
    banner("E5", "K simultaneous clients multiplexed onto one speaker (§2)");
    println!("  clients | engine time per audio-second | mix verified");
    for k in [1usize, 2, 4, 8, 16] {
        let config = ServerConfig { manual_ticks: true, ..ServerConfig::default() };
        let server = AudioServer::start(config).expect("server");
        let control = server.control();
        control.set_speaker_capture(0, 200_000);
        let freqs: Vec<f64> = (0..k).map(|i| 300.0 + 150.0 * i as f64).collect();
        let mut conns = Vec::new();
        for (i, f) in freqs.iter().enumerate() {
            let mut conn =
                Connection::establish(server.connect_pipe(), &format!("c{i}")).expect("conn");
            let rig = build_play_rig(&mut conn);
            let sound = upload_tone(&mut conn, *f, 40_000); // 5 s
            play(&mut conn, &rig, sound);
            conn.sync().expect("sync");
            conns.push(conn);
        }
        let before = control.stats();
        control.tick_n(500); // 5 s
        let after = control.stats();
        let busy = (after.busy - before.busy).as_secs_f64() / 5.0;
        // Verify every tone is present mid-mix.
        let cap = control.take_captured(0);
        let window = &cap[8000..16_000.min(cap.len())];
        let all_present = freqs
            .iter()
            .all(|&f| da_dsp::analysis::goertzel_power(window, 8000, f) > 10_000.0);
        report.push("E5", &format!("engine_ms_per_audio_s_{k}_clients"), busy * 1000.0, "ms");
        report.push("E5", &format!("mix_verified_{k}_clients"), all_present as u8 as f64, "bool");
        println!(
            "  {k:>7} | {:>17.3} ms/s           | {}",
            busy * 1000.0,
            if all_present { "PASS" } else { "FAIL" }
        );
        server.shutdown();
    }
}

// ---------------------------------------------------------------------------
// E5-XL — the event-driven connection plane at scale (DESIGN.md §13):
// engine+dispatch cost and play-start latency at 64..1024 concurrent
// clients, with the I/O thread count asserted bounded by the worker pool.
// ---------------------------------------------------------------------------

/// OS threads of this process, from /proc/self/status (Linux only;
/// returns 0 elsewhere, which disables the thread-bound assertion).
fn process_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find_map(|l| l.strip_prefix("Threads:"))
                .and_then(|v| v.trim().parse().ok())
        })
        .unwrap_or(0)
}

/// Engine+dispatch cost with `k` clients all actively playing: rig
/// setup wall time per client, then engine ms per audio-second.
fn e5xl_engine_cost(report: &mut Report, k: usize) {
    let config = ServerConfig { manual_ticks: true, ..ServerConfig::default() };
    let server = AudioServer::start(config).expect("server");
    let control = server.control();
    let setup0 = Instant::now();
    let mut conns = Vec::with_capacity(k);
    for i in 0..k {
        let mut conn =
            Connection::establish(server.connect_pipe(), &format!("xl{i}")).expect("conn");
        let rig = build_play_rig(&mut conn);
        let sound = upload_tone(&mut conn, 300.0 + (i % 16) as f64 * 90.0, 12_000); // 1.5 s
        play(&mut conn, &rig, sound);
        conns.push(conn);
    }
    // One probe sync flushes every queued request through dispatch.
    conns[0].sync().expect("sync");
    let setup_us_per_client = setup0.elapsed().as_micros() as f64 / k as f64;
    let before = control.stats();
    control.tick_n(100); // 1 s of audio
    let after = control.stats();
    let busy_ms = (after.busy - before.busy).as_secs_f64() * 1000.0;
    report.push("E5-XL", &format!("rig_setup_us_per_client_{k}_clients"), setup_us_per_client, "us");
    report.push("E5-XL", &format!("engine_ms_per_audio_s_{k}_clients"), busy_ms, "ms");
    println!(
        "  {k:>5} | setup {setup_us_per_client:>7.0} us/client | engine {busy_ms:>8.3} ms/s",
    );
    drop(conns);
    server.shutdown();
}

/// Flight-recorder configuration for a latency measurement.
#[derive(Clone, Copy)]
enum TraceMode {
    /// Recorder disabled entirely (overhead baseline).
    Off,
    /// Default shipping configuration: 1-in-16 sampling, 5 ms threshold.
    Sampled,
}

/// Play-start latency with `k` connected clients: up to 16 probe
/// threads each run E1-style play→PlayStarted trials while the other
/// clients stay connected. `suffix` distinguishes report metric names
/// for non-default trace modes. Returns (p50, p95) in microseconds.
fn e5xl_start_latency(
    report: &mut Report,
    k: usize,
    trials: usize,
    trace: TraceMode,
    suffix: &str,
) -> (u64, u64) {
    let config = ServerConfig {
        pacing: da_hw::clock::Pacing::RealTime,
        quantum_us: 10_000,
        ..ServerConfig::default()
    };
    let threads_floor = process_threads();
    let server = AudioServer::start(config).expect("server");
    server.control().with_core(|c| match trace {
        TraceMode::Off => c.tel.recorder.set_enabled(false),
        TraceMode::Sampled => c.tel.recorder.set_sampling(16, 5_000),
    });
    let probes = k.min(16);
    // Background population: connected, resident in the client table,
    // owned by the plane — but idle during the measurement.
    let background: Vec<Connection> = (0..k - probes)
        .map(|i| Connection::establish(server.connect_pipe(), &format!("bg{i}")).expect("conn"))
        .collect();
    let io_threads = process_threads();
    let workers = server.io_workers();
    report.push("E5-XL", &format!("io_threads_total_{k}_clients{suffix}"), io_threads as f64, "threads");
    if threads_floor > 0 {
        // The tentpole bound: workers + engine + main, never O(clients).
        assert!(
            io_threads <= threads_floor + workers + 2,
            "I/O threads not bounded by the worker pool: \
             {threads_floor} -> {io_threads} with {k} clients ({workers} workers)"
        );
    }
    let mut handles = Vec::new();
    for p in 0..probes {
        let duplex = server.connect_pipe();
        handles.push(std::thread::spawn(move || {
            let mut conn =
                Connection::establish(duplex, &format!("probe{p}")).expect("probe conn");
            let rig = build_play_rig(&mut conn);
            let sound = upload_tone(&mut conn, 440.0, 400); // 50 ms
            conn.sync().expect("sync");
            let mut samples = Vec::with_capacity(trials);
            for _ in 0..trials {
                let t0 = Instant::now();
                play(&mut conn, &rig, sound);
                conn.wait_event(Duration::from_secs(10), |e| {
                    matches!(e, Event::PlayStarted { .. })
                })
                .expect("play started");
                samples.push(t0.elapsed().as_micros() as u64);
                wait_done(&mut conn, rig.loud, Duration::from_secs(10));
            }
            samples
        }));
    }
    let mut samples = Vec::new();
    for h in handles {
        samples.extend(h.join().expect("probe thread"));
    }
    let s = latency_stats(samples);
    report.push("E5-XL", &format!("start_latency_p50_us_{k}_clients{suffix}"), s.p50_us as f64, "us");
    report.push("E5-XL", &format!("start_latency_p95_us_{k}_clients{suffix}"), s.p95_us as f64, "us");
    println!(
        "  {k:>5} | p50 {:>7.2} ms | p95 {:>7.2} ms | {io_threads} threads ({workers} I/O workers)",
        s.p50_us as f64 / 1000.0,
        s.p95_us as f64 / 1000.0,
    );
    drop(background);
    server.shutdown();
    (s.p50_us, s.p95_us)
}

fn e5xl_connection_plane(report: &mut Report) {
    banner("E5-XL", "connection plane at scale: 16 -> 1024 clients (DESIGN.md §13)");
    println!("  engine+dispatch cost (manual ticks, all clients playing):");
    println!("  clients | rig setup          | engine time per audio-second");
    for k in [16usize, 64, 256, 512, 1024] {
        e5xl_engine_cost(report, k);
    }
    println!("  play-start latency (real-time pacing, 16 concurrent probes):");
    println!("  clients | start latency      | process threads");
    let mut p95_at_16 = 0u64;
    let mut p95_at_512 = 0u64;
    let mut p95_at_256 = 0u64;
    for k in [16usize, 64, 256, 512, 1024] {
        let (_p50, p95) = e5xl_start_latency(report, k, 5, TraceMode::Sampled, "");
        if k == 16 {
            p95_at_16 = p95;
        }
        if k == 256 {
            p95_at_256 = p95;
        }
        if k == 512 {
            p95_at_512 = p95;
        }
    }
    // Acceptance: p95 start latency at 512 clients within 2x of the
    // 16-client value.
    let ratio = p95_at_512 as f64 / p95_at_16.max(1) as f64;
    report.push("E5-XL", "p95_ratio_512_vs_16_clients", ratio, "ratio");
    println!(
        "  p95(512 clients) / p95(16 clients) = {ratio:.2}    {}",
        if ratio <= 2.0 { "PASS (within 2x)" } else { "FAIL (> 2x)" }
    );
    // Tracing overhead (DESIGN.md §15): default 1-in-16 sampling vs the
    // recorder disabled, at 256 clients.
    println!("  flight-recorder overhead at 256 clients (recorder off):");
    let (_p50_off, p95_off) =
        e5xl_start_latency(report, 256, 5, TraceMode::Off, "_untraced");
    let overhead = p95_at_256 as f64 / p95_off.max(1) as f64;
    report.push("E5-XL", "tracing_overhead_p95_ratio_256_clients", overhead, "ratio");
    println!(
        "  p95(traced 1-in-16) / p95(untraced) = {overhead:.3}    {}",
        if overhead <= 1.05 { "PASS (within 5%)" } else { "FAIL (> 5%)" }
    );
}

/// Reads the recorded E5-XL 256-client p95 baseline from the committed
/// BENCH_results.json, if present.
fn e5xl_recorded_baseline() -> Option<f64> {
    let text = std::fs::read_to_string("BENCH_results.json").ok()?;
    let needle = "\"metric\": \"start_latency_p95_us_256_clients\"";
    let at = text.find(needle)?;
    let rest = &text[at + needle.len()..];
    let vat = rest.find("\"value\": ")?;
    let tail = &rest[vat + 9..];
    let end = tail.find([',', '}'])?;
    tail[..end].trim().parse().ok()
}

/// CI smoke gate: exit nonzero if p95 start latency at 256 clients
/// regressed more than 2x over the recorded baseline, or if default
/// 1-in-16 flight-recorder sampling costs more than 5% of p95 over a
/// same-machine run with the recorder disabled (DESIGN.md §15).
fn e5xl_smoke() -> i32 {
    println!("E5-XL smoke: start latency at 256 clients vs recorded baseline");
    let mut report = Report::new();
    let (_p50, p95) = e5xl_start_latency(&mut report, 256, 5, TraceMode::Sampled, "");
    let mut failed = false;
    match e5xl_recorded_baseline() {
        None => {
            println!("  no recorded baseline in BENCH_results.json; measurement-only run");
        }
        Some(baseline) => {
            let limit = baseline * 2.0;
            println!(
                "  measured p95 {:.2} ms, baseline {:.2} ms, limit {:.2} ms",
                p95 as f64 / 1000.0,
                baseline / 1000.0,
                limit / 1000.0
            );
            if (p95 as f64) <= limit {
                println!("  PASS");
            } else {
                eprintln!("  FAIL: p95 start latency regressed more than 2x");
                failed = true;
            }
        }
    }
    println!("E5-XL smoke: tracing overhead at 256 clients (1-in-16 sampling vs recorder off)");
    let (_p50_off, p95_off) =
        e5xl_start_latency(&mut report, 256, 5, TraceMode::Off, "_untraced");
    let limit = p95_off as f64 * 1.05;
    let overhead = p95 as f64 / p95_off.max(1) as f64;
    println!(
        "  traced p95 {p95} us, untraced p95 {p95_off} us, ratio {overhead:.4}, limit {limit:.0} us"
    );
    if p95 as f64 <= limit {
        println!("  PASS (within 5%)");
    } else {
        eprintln!("  FAIL: default-rate tracing costs more than 5% of p95");
        failed = true;
    }
    i32::from(failed)
}

// ---------------------------------------------------------------------------
// E9 — shared sound store & transcode cache (DESIGN.md §17): N clients
// playing the same catalogue sound cost one payload and one transcode
// ---------------------------------------------------------------------------

struct E9Run {
    /// Encoded payload bytes resident across all bound sounds, distinct
    /// shared payloads counted once.
    payload_bytes: usize,
    /// Distinct shared payloads backing the clients' sounds.
    distinct_payloads: usize,
    /// Convert time of the cold tick that first services the plays
    /// (includes the one-time transcode-cache build), in ns.
    cold_tick_convert_ns: u64,
    /// Mean convert time per steady-state tick (cache warm), in ns.
    steady_tick_convert_ns: f64,
    /// Transcode-cache hits observed over the run.
    cache_hits: u64,
}

fn e9_convert_sum(control: &da_server::ServerControl) -> u64 {
    control.with_core(|c| c.tel.metrics.dsp_convert_ns.snapshot().sum)
}

/// `k` clients each bind the same catalogue sound and play it under
/// manual ticks; returns memory and convert-time figures.
fn e9_run(k: usize) -> E9Run {
    let config = ServerConfig { manual_ticks: true, ..ServerConfig::default() };
    let server = AudioServer::start(config).expect("server");
    let control = server.control();
    let mut conns = Vec::with_capacity(k);
    for i in 0..k {
        let mut conn =
            Connection::establish(server.connect_pipe(), &format!("e9-{i}")).expect("conn");
        let rig = build_play_rig(&mut conn);
        let sound = conn.open_catalog_sound("system", "ring").expect("catalogue sound");
        play(&mut conn, &rig, sound);
        conns.push(conn);
    }
    // One probe sync flushes every queued request through dispatch.
    conns[0].sync().expect("sync");
    let (payload_bytes, distinct_payloads) = control.with_core(|c| {
        let mut seen = std::collections::HashSet::new();
        let mut bytes = 0usize;
        for (_, s) in &c.sounds {
            match &s.shared {
                Some(a) => {
                    if seen.insert(std::sync::Arc::as_ptr(a)) {
                        bytes += a.len();
                    }
                }
                None => bytes += s.data.len(),
            }
        }
        (bytes, seen.len())
    });
    // Cold phase: tick until the first decode lands (the tick that
    // starts the plays pays the one-time cache build).
    let base = e9_convert_sum(&control);
    let mut cold = 0u64;
    for _ in 0..10 {
        control.tick_n(1);
        cold = e9_convert_sum(&control) - base;
        if cold > 0 {
            break;
        }
    }
    // Steady state: the cache is warm; decode windows are slice copies
    // and conversion time per tick collapses to (near) zero.
    let steady_ticks = 30u64;
    let before = e9_convert_sum(&control);
    control.tick_n(steady_ticks);
    let steady = (e9_convert_sum(&control) - before) as f64 / steady_ticks as f64;
    let cache_hits = control.with_core(|c| c.tel.metrics.transcode_cache_hits_total.get());
    drop(conns);
    server.shutdown();
    E9Run {
        payload_bytes,
        distinct_payloads,
        cold_tick_convert_ns: cold,
        steady_tick_convert_ns: steady,
        cache_hits,
    }
}

fn e9_shared_store(report: &mut Report) {
    banner("E9", "shared sound store: N clients, one catalogue sound, O(1) payload memory (§17)");
    println!("  clients | payload bytes | payloads | cold tick convert | steady tick convert");
    let mut bytes_at_1 = 0usize;
    let mut at_256: Option<E9Run> = None;
    for k in [1usize, 16, 256] {
        let r = e9_run(k);
        report.push("E9", &format!("payload_bytes_{k}_clients"), r.payload_bytes as f64, "bytes");
        report.push(
            "E9",
            &format!("cold_tick_convert_ns_{k}_clients"),
            r.cold_tick_convert_ns as f64,
            "ns",
        );
        report.push(
            "E9",
            &format!("steady_tick_convert_ns_{k}_clients"),
            r.steady_tick_convert_ns,
            "ns",
        );
        println!(
            "  {k:>7} | {:>13} | {:>8} | {:>14} ns | {:>16.0} ns",
            r.payload_bytes, r.distinct_payloads, r.cold_tick_convert_ns, r.steady_tick_convert_ns,
        );
        if k == 1 {
            bytes_at_1 = r.payload_bytes;
        }
        if k == 256 {
            at_256 = Some(r);
        }
    }
    let r256 = at_256.expect("256-client run");
    let mem_ratio = r256.payload_bytes as f64 / bytes_at_1.max(1) as f64;
    let convert_ratio =
        r256.steady_tick_convert_ns / r256.cold_tick_convert_ns.max(1) as f64;
    report.push("E9", "payload_bytes_ratio_256_vs_1_clients", mem_ratio, "ratio");
    report.push("E9", "steady_over_cold_convert_256_clients", convert_ratio, "ratio");
    println!(
        "  payload bytes (256 clients) / (1 client) = {mem_ratio:.2}    {}",
        if mem_ratio <= 2.0 { "PASS (O(1) sharing)" } else { "FAIL (> 2x)" }
    );
    println!(
        "  steady/cold convert per tick at 256 clients = {convert_ratio:.4}    {}",
        if convert_ratio <= 0.10 { "PASS (<= 10%)" } else { "FAIL (> 10%)" }
    );
    println!("  transcode-cache hits over the 256-client run: {}", r256.cache_hits);
}

/// CI smoke gate: exit nonzero unless 256 clients playing one catalogue
/// sound keep payload memory within 2x of the 1-client run, with the
/// transcode cache demonstrably hot.
fn e9_store_smoke() -> i32 {
    println!("E9 smoke: shared-store payload memory, 256 clients vs 1 (DESIGN.md §17)");
    let r1 = e9_run(1);
    let r256 = e9_run(256);
    let ratio = r256.payload_bytes as f64 / r1.payload_bytes.max(1) as f64;
    println!(
        "  payload bytes: 1 client {} B, 256 clients {} B, ratio {ratio:.2} (limit 2.0)",
        r1.payload_bytes, r256.payload_bytes
    );
    let mut failed = false;
    if ratio > 2.0 {
        eprintln!("  FAIL: payload memory grows with client count (sharing broken)");
        failed = true;
    }
    if r256.cache_hits == 0 {
        eprintln!("  FAIL: no transcode-cache hits at 256 clients (cache not wired)");
        failed = true;
    }
    if !failed {
        println!("  PASS");
    }
    i32::from(failed)
}

// ---------------------------------------------------------------------------
// E6 — client-supplied real-time data vs buffering (paper §5.6, §6.2)
// ---------------------------------------------------------------------------
fn e6_streaming_jitter(report: &mut Report) {
    banner("E6", "real-time client data: buffering absorbs source jitter (§6.2)");
    println!("  prebuffer | producer jitter   | underrun frames (3 s stream)");
    use rand::Rng;
    for prebuffer_ms in [0u64, 100, 400] {
        let config = ServerConfig {
            pacing: da_hw::clock::Pacing::RealTime,
            quantum_us: 10_000,
            ..ServerConfig::default()
        };
        let server = AudioServer::start(config).expect("server");
        let mut conn = Connection::establish(server.connect_pipe(), "e6").expect("connect");
        let rig = build_play_rig(&mut conn);

        let total_frames = 24_000usize; // 3 s
        let pcm = da_dsp::tone::sine(8000, 440.0, total_frames, 10_000);
        let encoded = da_alib::connection::encode_for(SoundType::TELEPHONE, &pcm);
        let sound = conn.create_sound(SoundType::TELEPHONE).expect("sound");

        let pre = (prebuffer_ms * 8) as usize; // frames
        conn.write_sound(sound, &encoded[..pre], false).expect("prebuffer");
        play(&mut conn, &rig, sound);

        // Produce the rest in 100 ms chunks with mean-preserving jitter:
        // the source keeps up on average but individual chunks arrive up
        // to 60 ms late (a bursty network feed).
        let mut rng = rand::rng();
        let mut pos = pre;
        let mut underruns = 0u64;
        while pos < total_frames {
            let period_ms: u64 = rng.random_range(40..=160);
            std::thread::sleep(Duration::from_millis(period_ms));
            let next = (pos + 800).min(total_frames);
            conn.write_sound(sound, &encoded[pos..next], next == total_frames)
                .expect("write");
            pos = next;
            while let Some(ev) = conn.poll_event().expect("poll") {
                if let Event::SoundUnderrun { missing_frames, .. } = ev {
                    underruns += missing_frames;
                }
            }
        }
        // Drain until done.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match conn.next_event(Duration::from_millis(100)).expect("event") {
                Some(Event::SoundUnderrun { missing_frames, .. }) => {
                    underruns += missing_frames
                }
                Some(Event::CommandDone { .. }) => break,
                _ => {}
            }
            if Instant::now() > deadline {
                break;
            }
        }
        report.push(
            "E6",
            &format!("underrun_frames_prebuffer_{prebuffer_ms}_ms"),
            underruns as f64,
            "frames",
        );
        println!("  {prebuffer_ms:>6} ms | 40–160 ms/100 ms  | {underruns:>15}");
        server.shutdown();
    }
    println!("  expected shape: underruns fall as the prebuffer grows");
}

// ---------------------------------------------------------------------------
// E7 — synchronization events drive other media (paper §5.7, Figure 6-1)
// ---------------------------------------------------------------------------
fn e7_sync_event_cadence(report: &mut Report) {
    banner("E7", "sync marks arrive steadily enough to drive a display (§5.7)");
    let config = ServerConfig {
        pacing: da_hw::clock::Pacing::RealTime,
        quantum_us: 10_000,
        ..ServerConfig::default()
    };
    let server = AudioServer::start(config).expect("server");
    let mut conn = Connection::establish(server.connect_pipe(), "e7").expect("connect");
    let rig = build_play_rig(&mut conn);
    conn.select_events(rig.player, EventMask::SYNC | EventMask::DEVICE).expect("select");
    let sound = upload_tone(&mut conn, 440.0, 24_000); // 3 s
    conn.sync().expect("sync");
    play(&mut conn, &rig, sound);
    let mut arrivals: Vec<Instant> = Vec::new();
    let mut positions: Vec<u64> = Vec::new();
    loop {
        match conn.next_event(Duration::from_secs(5)).expect("event") {
            Some(Event::SyncMark { position, .. }) => {
                arrivals.push(Instant::now());
                positions.push(position);
            }
            Some(Event::CommandDone { .. }) => break,
            Some(_) => {}
            None => break,
        }
    }
    let n = arrivals.len();
    let gaps: Vec<f64> = arrivals
        .windows(2)
        .map(|w| w[1].duration_since(w[0]).as_secs_f64() * 1000.0)
        .collect();
    let mean = gaps.iter().sum::<f64>() / gaps.len().max(1) as f64;
    let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>()
        / gaps.len().max(1) as f64;
    let monotone = positions.windows(2).all(|w| w[1] > w[0]);
    report.push("E7", "sync_marks_over_3s", n as f64, "events");
    report.push("E7", "sync_gap_mean_ms", mean, "ms");
    report.push("E7", "sync_gap_stddev_ms", var.sqrt(), "ms");
    report.push("E7", "sync_positions_monotone", monotone as u8 as f64, "bool");
    println!("  marks over 3 s of playback: {n} (expected ~30 at the 100 ms default)");
    println!(
        "  inter-arrival: mean {mean:.1} ms, stddev {:.1} ms; positions monotone: {monotone}",
        var.sqrt()
    );
    println!(
        "  verdict: {}",
        if n >= 25 && monotone { "PASS (display can slave to audio)" } else { "FAIL" }
    );
    server.shutdown();
}

// ---------------------------------------------------------------------------
// E8 — multiple data representations below the application (paper §2;
// §5.9 footnote: ADPCM halves the data rate)
// ---------------------------------------------------------------------------
fn e8_codecs(report: &mut Report) {
    banner("E8", "encodings: rate ratios, quality and software codec speed (§2)");
    let tts = da_synth::tts::Synthesizer::new(8000);
    let mut speech = Vec::new();
    for _ in 0..10 {
        speech.extend(tts.speak("the quick brown fox jumps over the lazy dog"));
    }
    let seconds = speech.len() as f64 / 8000.0;
    println!("  test signal: {:.1} s of synthesized speech", seconds);
    println!("  codec      | bytes/s vs PCM-16 | SNR (dB) | encode speed (× real time)");
    type EncFn = Box<dyn Fn(&[i16]) -> Vec<u8>>;
    type DecFn = Box<dyn Fn(&[u8]) -> Vec<i16>>;
    let cases: Vec<(&str, EncFn, DecFn)> = vec![
        (
            "u-law     ",
            Box::new(|p: &[i16]| da_dsp::mulaw::encode_slice(p)),
            Box::new(|d: &[u8]| da_dsp::mulaw::decode_slice(d)),
        ),
        (
            "A-law     ",
            Box::new(|p: &[i16]| da_dsp::alaw::encode_slice(p)),
            Box::new(|d: &[u8]| da_dsp::alaw::decode_slice(d)),
        ),
        (
            "IMA ADPCM ",
            Box::new(|p: &[i16]| da_dsp::adpcm::encode_slice(p)),
            Box::new(|d: &[u8]| da_dsp::adpcm::decode_slice(d)),
        ),
    ];
    for (name, enc, dec) in cases {
        let t0 = Instant::now();
        let encoded = enc(&speech);
        let enc_time = t0.elapsed().as_secs_f64();
        let decoded = dec(&encoded);
        let snr = da_dsp::analysis::snr_db(&speech, &decoded);
        let ratio = encoded.len() as f64 / (speech.len() * 2) as f64;
        let key = name.trim().to_lowercase().replace([' ', '-'], "_");
        report.push("E8", &format!("{key}_rate_vs_pcm16"), ratio, "ratio");
        report.push("E8", &format!("{key}_snr_db"), snr, "db");
        report.push("E8", &format!("{key}_encode_speed_x"), seconds / enc_time.max(1e-9), "ratio");
        println!(
            "  {name} | {:>17.0}% | {snr:>8.1} | {:>8.0}x",
            ratio * 100.0,
            seconds / enc_time.max(1e-9)
        );
    }
    println!("  paper: ADPCM \"can reduce audio data rates by about one half\" of u-law");
    println!("  (u-law is 50% of PCM-16; ADPCM is 25% — exactly half of u-law: PASS)");
}

// ---------------------------------------------------------------------------
// P1 — engine quantum ablation (design choice documented in DESIGN.md)
// ---------------------------------------------------------------------------
fn p1_quantum_ablation(report: &mut Report) {
    banner("P1", "ablation: engine quantum vs CPU cost and reaction latency");
    println!("  quantum | CPU fraction (8 kHz play) | quantum-bound added latency");
    for quantum_us in [2_500u64, 10_000, 40_000] {
        let rig = ManualRig::new(da_hw::registry::HwSpec::desktop(), quantum_us);
        let mut conn = rig.conn;
        let control = rig.control;
        let play_rig = build_play_rig(&mut conn);
        let sound = upload_tone(&mut conn, 440.0, 80_000); // 10 s
        play(&mut conn, &play_rig, sound);
        conn.sync().expect("sync");
        let ticks = 10_000_000 / quantum_us; // 10 s of audio
        let before = control.stats();
        control.tick_n(ticks);
        let after = control.stats();
        let busy = (after.busy - before.busy).as_secs_f64() / 10.0;
        report.push("P1", &format!("cpu_fraction_quantum_{quantum_us}_us"), busy, "ratio");
        println!(
            "  {:>5.1} ms | {:>24.3}% | up to {:>5.1} ms",
            quantum_us as f64 / 1000.0,
            busy * 100.0,
            quantum_us as f64 / 1000.0
        );
    }
    println!("  expected shape: smaller quanta buy reaction latency with more CPU");
}

// ---------------------------------------------------------------------------
// MC1 — bounded model checker throughput (DESIGN.md §11). Not a paper
// claim: this sizes the CI exploration budget — how many deduplicated
// states of the queue/activation machine the V1-V12 + T1 oracle can
// cover per second of wall time.
// ---------------------------------------------------------------------------
fn mc1_exploration_throughput(report: &mut Report) {
    use da_modelcheck::{explore::explore, Config};
    banner("MC1", "model-checker exploration throughput (DESIGN.md §11)");
    let cfg = Config { max_states: 6_000, ..Config::default() };
    let r = explore(&cfg);
    assert!(
        r.counterexamples().is_empty(),
        "explore found a violation during benchmarking: {:?}",
        r.counterexamples()
    );
    report.push("MC1", "explore_states_visited", r.states() as f64, "states");
    report.push("MC1", "explore_states_per_sec", r.states_per_sec(), "states/s");
    report.push("MC1", "explore_replayed_actions", r.replayed_actions() as f64, "actions");
    println!("  seed     | states | transitions | depth reached");
    for run in &r.seeds {
        println!(
            "  {:<8} | {:>6} | {:>11} | {:>13}",
            run.seed.name(),
            run.states,
            run.transitions,
            run.depth_reached
        );
    }
    println!(
        "  {} deduplicated states in {:.2} s ({:.0} states/s, {} replayed actions)",
        r.states(),
        r.elapsed.as_secs_f64(),
        r.states_per_sec(),
        r.replayed_actions()
    );
    println!("  (sizes the CI budget: 50k states ≈ {:.0} s)", 50_000.0 / r.states_per_sec());
}
