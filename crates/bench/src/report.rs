//! Machine-readable experiment results.
//!
//! The experiment harness prints human tables; this module accumulates
//! the same figures as flat records and serialises them to
//! `BENCH_results.json` so regressions can be diffed by tooling. JSON is
//! written by hand — the workspace carries no serialisation dependency.

use std::fmt::Write as _;

/// One measured figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Experiment id ("E1", "P1", ...).
    pub experiment: String,
    /// Metric name, snake_case ("start_latency_p95_us").
    pub metric: String,
    /// The measured value.
    pub value: f64,
    /// Unit ("us", "percent", "frames", "ratio", ...).
    pub unit: String,
}

/// An accumulating set of experiment records.
#[derive(Debug, Default)]
pub struct Report {
    records: Vec<Record>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Report {
        Report::default()
    }

    /// Appends one figure.
    pub fn push(&mut self, experiment: &str, metric: &str, value: f64, unit: &str) {
        self.records.push(Record {
            experiment: experiment.to_string(),
            metric: metric.to_string(),
            value,
            unit: unit.to_string(),
        });
    }

    /// The records accumulated so far.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Serialises the report as a JSON document:
    /// `{"results": [{"experiment": ..., "metric": ..., ...}, ...]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"results\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"experiment\": {}, \"metric\": {}, \"value\": {}, \"unit\": {}}}",
                json_string(&r.experiment),
                json_string(&r.metric),
                json_number(r.value),
                json_string(&r.unit),
            );
            out.push_str(if i + 1 < self.records.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON document to `path`.
    pub fn write_file(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Escapes a string per RFC 8259.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a finite number as a JSON literal (JSON has no NaN/Inf).
fn json_number(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serialises_to_valid_shape() {
        let mut r = Report::new();
        r.push("E1", "start_latency_p95_us", 1234.0, "us");
        r.push("E3", "cpu_fraction", 0.0125, "ratio");
        let json = r.to_json();
        assert!(json.starts_with("{\n  \"results\": [\n"));
        assert!(json.contains("\"experiment\": \"E1\""));
        assert!(json.contains("\"value\": 1234"));
        assert!(json.contains("\"value\": 0.0125"));
        assert!(json.ends_with("  ]\n}\n"));
        // Exactly one comma between the two records.
        assert_eq!(json.matches("},").count(), 1);
    }

    #[test]
    fn json_escaping_and_numbers() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_number(2.0), "2");
        assert_eq!(json_number(2.5), "2.5");
    }
}
