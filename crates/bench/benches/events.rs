//! Event fan-out cost: sync marks delivered to many selecting clients
//! every tick (E7, paper §5.7). Each iteration ticks once and drains the
//! watchers, as a real deployment would.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use da_alib::Connection;
use da_bench::{build_play_rig, play, upload_tone};
use da_proto::event::EventMask;
use da_server::{AudioServer, ServerConfig};
use std::time::Duration;

fn bench_event_fanout(c: &mut Criterion) {
    let mut g = c.benchmark_group("tick_and_drain_with_k_sync_watchers");
    g.warm_up_time(Duration::from_secs(1)).measurement_time(Duration::from_secs(2));
    for k in [0usize, 4, 16] {
        let config = ServerConfig { manual_ticks: true, ..ServerConfig::default() };
        let server = AudioServer::start(config).expect("server");
        let control = server.control();
        let mut owner = Connection::establish(server.connect_pipe(), "owner").unwrap();
        let rig = build_play_rig(&mut owner);
        // Sync mark every tick (80 frames).
        owner.set_sync_interval(rig.player, 80).unwrap();
        let sound = upload_tone(&mut owner, 440.0, 8000 * 3600);
        let mut watchers = Vec::new();
        for i in 0..k {
            let mut w =
                Connection::establish(server.connect_pipe(), &format!("w{i}")).unwrap();
            w.select_events(rig.player, EventMask::SYNC).unwrap();
            w.sync().unwrap();
            watchers.push(w);
        }
        play(&mut owner, &rig, sound);
        owner.sync().unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                control.tick_n(1);
                for w in watchers.iter_mut() {
                    while w.poll_event().unwrap().is_some() {}
                }
            })
        });
        server.shutdown();
    }
    g.finish();
}

criterion_group!(benches, bench_event_fanout);
criterion_main!(benches);
