//! Engine tick cost while streaming at the paper's data rates (E3).

use criterion::{criterion_group, criterion_main, Criterion};
use da_bench::{build_play_rig, play, ManualRig};
use da_proto::types::{Encoding, SoundType};

fn bench_tick(c: &mut Criterion) {
    // Telephone-rate playback: one tick moves 80 frames.
    let rig = ManualRig::desktop();
    let mut conn = rig.conn;
    let play_rig = build_play_rig(&mut conn);
    // An hour of audio so the bench never drains it.
    let pcm = da_dsp::tone::sine(8000, 440.0, 8000 * 60, 10_000);
    let sound = conn.upload_pcm(SoundType::TELEPHONE, &pcm).unwrap();
    play(&mut conn, &play_rig, sound);
    conn.sync().unwrap();
    c.bench_function("engine_tick_8k_ulaw_play", |b| b.iter(|| rig.control.tick_n(1)));

    // CD-rate playback through the hifi speaker.
    let rig2 = ManualRig::new(da_hw::registry::HwSpec::desktop_hifi(), 10_000);
    let mut conn2 = rig2.conn;
    let loud = conn2.create_loud(None).unwrap();
    let player = conn2
        .create_vdevice(loud, da_proto::types::DeviceClass::Player, vec![])
        .unwrap();
    let out = conn2
        .create_vdevice(
            loud,
            da_proto::types::DeviceClass::Output,
            vec![da_proto::types::Attribute::SampleRate(44_100)],
        )
        .unwrap();
    conn2.create_wire(player, 0, out, 0, da_proto::types::WireType::Any).unwrap();
    conn2.map_loud(loud).unwrap();
    let mono = da_dsp::tone::sine(44_100, 440.0, 44_100 * 30, 10_000);
    let stereo: Vec<i16> = mono.iter().flat_map(|&s| [s, s]).collect();
    let cd = conn2.upload_pcm(SoundType::CD, &stereo).unwrap();
    conn2
        .enqueue_cmd(loud, player, da_proto::DeviceCommand::Play(cd))
        .unwrap();
    conn2.start_queue(loud).unwrap();
    conn2.sync().unwrap();
    c.bench_function("engine_tick_44k1_stereo_play", |b| b.iter(|| rig2.control.tick_n(1)));

    // Idle server baseline.
    let rig3 = ManualRig::desktop();
    c.bench_function("engine_tick_idle", |b| b.iter(|| rig3.control.tick_n(1)));

    let _ = (SoundType { encoding: Encoding::ULaw, sample_rate: 8000, channels: 1 },);
}

criterion_group!(benches, bench_tick);
criterion_main!(benches);
