//! Wire-format codec throughput: request encode/decode (paper §4.1's
//! precisely defined protocol must not be the bottleneck).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use da_proto::codec::{WireReader, WireWriter};
use da_proto::request::Request;
use da_proto::{WireRead, WireWrite};
use std::hint::black_box;

fn bench_wire(c: &mut Criterion) {
    let requests: Vec<Request> = (0..256)
        .map(|i| Request::WriteSoundData {
            id: da_proto::SoundId(0x100 + i),
            data: vec![0u8; 800],
            eof: false,
        })
        .collect();
    let mut g = c.benchmark_group("protocol_codec");
    g.throughput(Throughput::Elements(requests.len() as u64));
    g.bench_function("encode_256_requests", |b| {
        b.iter(|| {
            let mut w = WireWriter::new();
            for r in &requests {
                r.write(&mut w);
            }
            black_box(w.finish())
        })
    });
    let encoded = {
        let mut w = WireWriter::new();
        for r in &requests {
            r.write(&mut w);
        }
        w.finish()
    };
    g.bench_function("decode_256_requests", |b| {
        b.iter(|| {
            let mut r = WireReader::new(&encoded);
            for _ in 0..requests.len() {
                black_box(Request::read(&mut r).unwrap());
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
