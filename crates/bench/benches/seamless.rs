//! Cost of queue-command transitions: ticks containing seams are the
//! engine's worst case (E2/E4, paper §6.2).

use criterion::{criterion_group, criterion_main, Criterion};
use da_bench::{build_play_rig, ManualRig};
use da_proto::command::DeviceCommand;
use da_proto::types::SoundType;

fn bench_seams(c: &mut Criterion) {
    // Many tiny sounds: every tick crosses one or more seams.
    let rig = ManualRig::desktop();
    let mut conn = rig.conn;
    let play_rig = build_play_rig(&mut conn);
    let tiny = conn
        .upload_pcm(SoundType::TELEPHONE, &da_dsp::tone::sine(8000, 440.0, 40, 8000))
        .unwrap();
    // Preload a deep queue of 40-frame sounds (two seams per 80-frame tick).
    let entries: Vec<da_proto::QueueEntry> = (0..100_000)
        .map(|_| da_proto::QueueEntry::Device {
            vdev: play_rig.player,
            cmd: DeviceCommand::Play(tiny),
        })
        .collect();
    for chunk in entries.chunks(4096) {
        conn.enqueue(play_rig.loud, chunk.to_vec()).unwrap();
    }
    conn.start_queue(play_rig.loud).unwrap();
    conn.sync().unwrap();
    c.bench_function("engine_tick_two_seams_per_tick", |b| b.iter(|| rig.control.tick_n(1)));
}

criterion_group!(benches, bench_seams);
criterion_main!(benches);
