//! Route-plan and data-plane cost: cached plans versus per-tick
//! recomputation, across deep chains, wide fan-out and a many-client mix.
//!
//! The `cached` variants measure the shipped engine (plans rebuilt only
//! when `Core::topology_gen` moves). The `invalidated` variants call
//! `Core::invalidate_plans` before every tick, forcing the plan rebuild
//! the old engine effectively performed per tick — the ratio between the
//! two is the tentpole's win.

use criterion::{criterion_group, criterion_main, Criterion};
use da_bench::ManualRig;
use da_proto::command::DeviceCommand;
use da_proto::ids::VDeviceId;
use da_proto::types::{Attribute, DeviceClass, SoundType, WireType};
use da_server::ServerControl;

/// player → dsp → dsp → … → output, `depth` intermediates long.
fn build_deep_chain(rig: &mut ManualRig, depth: usize) {
    let conn = &mut rig.conn;
    let loud = conn.create_loud(None).unwrap();
    let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let mut prev = player;
    for _ in 0..depth {
        let dsp = conn.create_vdevice(loud, DeviceClass::Dsp, vec![]).unwrap();
        conn.create_wire(prev, 0, dsp, 0, WireType::Any).unwrap();
        prev = dsp;
    }
    let output = conn.create_vdevice(loud, DeviceClass::Output, vec![]).unwrap();
    conn.create_wire(prev, 0, output, 0, WireType::Any).unwrap();
    start_play(rig, loud.0, player);
}

/// One player fanning out through a crossbar to `width` mixers that all
/// feed one output through a mixer tree.
fn build_wide_fanout(rig: &mut ManualRig, width: usize) {
    let conn = &mut rig.conn;
    let loud = conn.create_loud(None).unwrap();
    let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let mix = conn.create_vdevice(
        loud,
        DeviceClass::Mixer,
        vec![Attribute::SinkPorts(width as u8)],
    )
    .unwrap();
    for port in 0..width {
        let dsp = conn.create_vdevice(loud, DeviceClass::Dsp, vec![]).unwrap();
        conn.create_wire(player, 0, dsp, 0, WireType::Any).unwrap();
        conn.create_wire(dsp, 0, mix, port as u8, WireType::Any).unwrap();
    }
    let output = conn.create_vdevice(loud, DeviceClass::Output, vec![]).unwrap();
    conn.create_wire(mix, 0, output, 0, WireType::Any).unwrap();
    start_play(rig, loud.0, player);
}

fn start_play(rig: &mut ManualRig, loud: u32, player: VDeviceId) {
    let conn = &mut rig.conn;
    let loud = da_proto::ids::LoudId(loud);
    // An hour of telephone audio so the bench never drains it.
    let pcm = da_dsp::tone::sine(8000, 440.0, 8000 * 3600, 10_000);
    let sound = conn.upload_pcm(SoundType::TELEPHONE, &pcm).unwrap();
    conn.enqueue_cmd(loud, player, DeviceCommand::Play(sound)).unwrap();
    conn.start_queue(loud).unwrap();
    conn.map_loud(loud).unwrap();
    conn.sync().unwrap();
    rig.tick(5); // warm the plan cache and scratch pools
}

fn bench_pair(c: &mut Criterion, name: &str, control: &ServerControl) {
    c.bench_function(&format!("routing_{name}_cached"), |b| {
        b.iter(|| control.tick_n(1))
    });
    c.bench_function(&format!("routing_{name}_invalidated"), |b| {
        b.iter(|| {
            control.with_core(|core| core.invalidate_plans());
            control.tick_n(1);
        })
    });
}

fn bench_routing(c: &mut Criterion) {
    // Deep chain: 16 DSP stages between player and speaker.
    let mut rig = ManualRig::desktop();
    build_deep_chain(&mut rig, 16);
    bench_pair(c, "deep_chain_16", &rig.control);

    // Wide fan-out: 1 player → 12 parallel DSPs → 12-input mixer.
    let mut rig = ManualRig::desktop();
    build_wide_fanout(&mut rig, 12);
    bench_pair(c, "fanout_12", &rig.control);

    // Many clients: 16 independent player→output LOUDs sharing the
    // speaker, each with its own route plan.
    let rig = ManualRig::desktop();
    let mut conns: Vec<_> = (0..16)
        .map(|i| {
            da_alib::Connection::establish(rig.server.connect_pipe(), &format!("c{i}"))
                .expect("connect")
        })
        .collect();
    let pcm = da_dsp::tone::sine(8000, 300.0, 8000 * 3600, 10_000);
    for conn in conns.iter_mut() {
        let loud = conn.create_loud(None).unwrap();
        let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
        let output = conn.create_vdevice(loud, DeviceClass::Output, vec![]).unwrap();
        conn.create_wire(player, 0, output, 0, WireType::Any).unwrap();
        let sound = conn.upload_pcm(SoundType::TELEPHONE, &pcm).unwrap();
        conn.enqueue_cmd(loud, player, DeviceCommand::Play(sound)).unwrap();
        conn.start_queue(loud).unwrap();
        conn.map_loud(loud).unwrap();
        conn.sync().unwrap();
    }
    rig.tick(5);
    bench_pair(c, "mix_16_clients", &rig.control);
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
