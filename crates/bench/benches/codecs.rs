//! Codec throughput: µ-law, A-law, IMA ADPCM, and format conversion.
//! Supports experiment E8 (multiple data representations, paper §2).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn one_second_speech() -> Vec<i16> {
    da_synth::tts::Synthesizer::new(8000).speak("benchmark signal for the codecs")
}

fn bench_codecs(c: &mut Criterion) {
    let pcm = one_second_speech();
    let ulaw = da_dsp::mulaw::encode_slice(&pcm);
    let alaw = da_dsp::alaw::encode_slice(&pcm);
    let adpcm = da_dsp::adpcm::encode_slice(&pcm);

    let mut g = c.benchmark_group("codecs");
    g.throughput(Throughput::Elements(pcm.len() as u64));
    g.bench_function("mulaw_encode", |b| {
        b.iter(|| da_dsp::mulaw::encode_slice(black_box(&pcm)))
    });
    g.bench_function("mulaw_decode", |b| {
        b.iter(|| da_dsp::mulaw::decode_slice(black_box(&ulaw)))
    });
    g.bench_function("alaw_encode", |b| {
        b.iter(|| da_dsp::alaw::encode_slice(black_box(&pcm)))
    });
    g.bench_function("alaw_decode", |b| {
        b.iter(|| da_dsp::alaw::decode_slice(black_box(&alaw)))
    });
    g.bench_function("adpcm_encode", |b| {
        b.iter(|| da_dsp::adpcm::encode_slice(black_box(&pcm)))
    });
    g.bench_function("adpcm_decode", |b| {
        b.iter(|| da_dsp::adpcm::decode_slice(black_box(&adpcm)))
    });
    g.bench_function("resample_8k_to_44k1", |b| {
        b.iter(|| da_dsp::resample::resample(black_box(&pcm), 8000, 44_100))
    });
    g.finish();
}

criterion_group!(benches, bench_codecs);
criterion_main!(benches);
