//! Protocol round-trip latency over the two transports.
//! Supports experiment E1 (playback start latency, paper §6).

use criterion::{criterion_group, criterion_main, Criterion};
use da_alib::Connection;
use da_server::{AudioServer, ServerConfig};

fn bench_round_trips(c: &mut Criterion) {
    // Pipe transport.
    let config = ServerConfig { manual_ticks: true, ..ServerConfig::default() };
    let server = AudioServer::start(config).expect("server");
    let mut pipe = Connection::establish(server.connect_pipe(), "lat-pipe").expect("conn");
    c.bench_function("sync_round_trip_pipe", |b| b.iter(|| pipe.sync().unwrap()));

    // TCP transport.
    let config = ServerConfig {
        manual_ticks: true,
        tcp_addr: Some("127.0.0.1:0".into()),
        ..ServerConfig::default()
    };
    let tcp_server = AudioServer::start(config).expect("server");
    let addr = tcp_server.tcp_addr().unwrap().to_string();
    let mut tcp = Connection::open_tcp(&addr, "lat-tcp").expect("conn");
    c.bench_function("sync_round_trip_tcp", |b| b.iter(|| tcp.sync().unwrap()));

    // Request dispatch without a reply (enqueue + sync amortised over 64).
    c.bench_function("async_request_dispatch_pipe", |b| {
        let loud = pipe.create_loud(None).unwrap();
        pipe.sync().unwrap();
        b.iter(|| {
            for _ in 0..64 {
                pipe.flush_queue(loud).unwrap();
            }
            pipe.sync().unwrap();
        })
    });

    server.shutdown();
    tcp_server.shutdown();
}

criterion_group!(benches, bench_round_trips);
criterion_main!(benches);
