//! Sound-data ingest throughput: WriteSoundData dispatch (E6, paper §5.6).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use da_alib::Connection;
use da_proto::types::SoundType;
use da_server::{AudioServer, ServerConfig};

fn bench_ingest(c: &mut Criterion) {
    let config = ServerConfig { manual_ticks: true, ..ServerConfig::default() };
    let server = AudioServer::start(config).expect("server");
    let mut conn = Connection::establish(server.connect_pipe(), "ingest").unwrap();
    let chunk = vec![0x55u8; 64 * 1024];
    let mut g = c.benchmark_group("sound_ingest");
    g.throughput(Throughput::Bytes(chunk.len() as u64 * 16));
    g.bench_function("write_1MiB_in_64k_chunks", |b| {
        b.iter(|| {
            let sound = conn.create_sound(SoundType::TELEPHONE).unwrap();
            for _ in 0..16 {
                conn.write_sound(sound, &chunk, false).unwrap();
            }
            conn.write_sound(sound, &[], true).unwrap();
            conn.sync().unwrap();
            conn.delete_sound(sound).unwrap();
        })
    });
    g.finish();
    server.shutdown();
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
