//! P1 ablation: engine quantum size vs per-tick and per-audio-second cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use da_bench::{build_play_rig, play, upload_tone, ManualRig};
use std::time::Duration;

fn bench_quanta(c: &mut Criterion) {
    let mut g = c.benchmark_group("one_second_of_audio_by_quantum");
    g.warm_up_time(Duration::from_secs(1)).measurement_time(Duration::from_secs(2));
    for quantum_us in [2_500u64, 10_000, 40_000] {
        let rig = ManualRig::new(da_hw::registry::HwSpec::desktop(), quantum_us);
        let mut conn = rig.conn;
        let play_rig = build_play_rig(&mut conn);
        let sound = upload_tone(&mut conn, 440.0, 8000 * 600);
        play(&mut conn, &play_rig, sound);
        conn.sync().unwrap();
        let ticks_per_second = 1_000_000 / quantum_us;
        g.bench_with_input(
            BenchmarkId::from_parameter(quantum_us),
            &quantum_us,
            |b, _| b.iter(|| rig.control.tick_n(ticks_per_second)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_quanta);
criterion_main!(benches);
