//! Engine tick cost as simultaneous client streams grow (E5, paper §2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use da_alib::Connection;
use da_bench::{build_play_rig, play, upload_tone};
use da_server::{AudioServer, ServerConfig};
use std::time::Duration;

fn bench_multiclient(c: &mut Criterion) {
    let mut g = c.benchmark_group("tick_with_k_players");
    g.warm_up_time(Duration::from_secs(1)).measurement_time(Duration::from_secs(2));
    for k in [1usize, 4, 8, 16] {
        let config = ServerConfig { manual_ticks: true, ..ServerConfig::default() };
        let server = AudioServer::start(config).expect("server");
        let control = server.control();
        let mut conns = Vec::new();
        for i in 0..k {
            let mut conn =
                Connection::establish(server.connect_pipe(), &format!("p{i}")).unwrap();
            let rig = build_play_rig(&mut conn);
            let sound = upload_tone(&mut conn, 300.0 + i as f64 * 100.0, 8000 * 120);
            play(&mut conn, &rig, sound);
            conn.sync().unwrap();
            conns.push(conn);
        }
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| control.tick_n(1))
        });
        server.shutdown();
    }
    g.finish();
}

criterion_group!(benches, bench_multiclient);
criterion_main!(benches);
