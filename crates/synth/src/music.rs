//! Note-based music synthesis.
//!
//! Music synthesizers "process note-based audio. They accept commands, and
//! produce audio data on their single output" (paper §5.1): `SetState`
//! (tempo), `SetVoice` and `Note`.

/// Waveform shapes selectable with `SetVoice`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Voice {
    /// Pure sine.
    #[default]
    Sine,
    /// Square wave (hollow, clarinet-like).
    Square,
    /// Triangle wave (soft).
    Triangle,
    /// Sawtooth (bright, string-like).
    Saw,
}

impl Voice {
    /// Parses a voice name; unknown names yield `None`.
    pub fn from_name(name: &str) -> Option<Voice> {
        Some(match name.to_ascii_lowercase().as_str() {
            "sine" => Voice::Sine,
            "square" => Voice::Square,
            "triangle" => Voice::Triangle,
            "saw" | "sawtooth" => Voice::Saw,
            _ => return None,
        })
    }

    fn sample(self, phase: f64) -> f64 {
        match self {
            Voice::Sine => (phase * std::f64::consts::TAU).sin(),
            Voice::Square => {
                if phase < 0.5 {
                    1.0
                } else {
                    -1.0
                }
            }
            Voice::Triangle => {
                if phase < 0.5 {
                    4.0 * phase - 1.0
                } else {
                    3.0 - 4.0 * phase
                }
            }
            Voice::Saw => 2.0 * phase - 1.0,
        }
    }
}

/// Frequency in Hz of a MIDI note number (69 = A4 = 440 Hz).
pub fn note_frequency(note: u8) -> f64 {
    440.0 * 2f64.powf((note as f64 - 69.0) / 12.0)
}

/// ADSR envelope parameters, in milliseconds (sustain as a fraction).
#[derive(Debug, Clone, Copy)]
pub struct Envelope {
    /// Attack time, ms.
    pub attack_ms: u32,
    /// Decay time, ms.
    pub decay_ms: u32,
    /// Sustain level, 0.0–1.0.
    pub sustain: f64,
    /// Release time, ms.
    pub release_ms: u32,
}

impl Default for Envelope {
    fn default() -> Self {
        Envelope { attack_ms: 10, decay_ms: 30, sustain: 0.7, release_ms: 40 }
    }
}

impl Envelope {
    /// Envelope gain at sample `n` of a note lasting `total` samples at
    /// `rate` Hz.
    pub fn gain_at(&self, n: usize, total: usize, rate: u32) -> f64 {
        let ms = |m: u32| (m as usize * rate as usize) / 1000;
        let a = ms(self.attack_ms).max(1);
        let d = ms(self.decay_ms).max(1);
        let r = ms(self.release_ms).max(1).min(total);
        let release_start = total.saturating_sub(r);
        if n >= release_start {
            let base = self.gain_at(release_start.saturating_sub(1), usize::MAX, rate);
            let frac = (n - release_start) as f64 / r as f64;
            return base * (1.0 - frac);
        }
        if n < a {
            n as f64 / a as f64
        } else if n < a + d {
            1.0 - (1.0 - self.sustain) * ((n - a) as f64 / d as f64)
        } else {
            self.sustain
        }
    }
}

/// A note-based synthesizer (one per music-synthesizer virtual device).
#[derive(Debug, Clone)]
pub struct MusicSynth {
    rate: u32,
    voice: Voice,
    tempo_bpm: u16,
    envelope: Envelope,
}

impl MusicSynth {
    /// Creates a synthesizer at `sample_rate` Hz.
    pub fn new(sample_rate: u32) -> Self {
        MusicSynth {
            rate: sample_rate,
            voice: Voice::default(),
            tempo_bpm: 120,
            envelope: Envelope::default(),
        }
    }

    /// Selects the voice (the `SetVoice` command); unknown names are
    /// ignored.
    pub fn set_voice(&mut self, name: &str) -> bool {
        match Voice::from_name(name) {
            Some(v) => {
                self.voice = v;
                true
            }
            None => false,
        }
    }

    /// Sets the tempo (the `SetState` command).
    pub fn set_tempo(&mut self, bpm: u16) {
        self.tempo_bpm = bpm.clamp(20, 400);
    }

    /// Current tempo in beats per minute.
    pub fn tempo(&self) -> u16 {
        self.tempo_bpm
    }

    /// Duration in sample frames of one beat at the current tempo.
    pub fn beat_frames(&self) -> usize {
        (self.rate as u64 * 60 / self.tempo_bpm as u64) as usize
    }

    /// Renders one note (the `Note` command): MIDI number, velocity
    /// 0–127, duration in ms.
    pub fn note(&self, note: u8, velocity: u8, duration_ms: u32) -> Vec<i16> {
        let total = (self.rate as u64 * duration_ms as u64 / 1000) as usize;
        let freq = note_frequency(note);
        let amp = 24000.0 * (velocity.min(127) as f64 / 127.0);
        let step = freq / self.rate as f64;
        let mut phase = 0.0f64;
        (0..total)
            .map(|n| {
                let g = self.envelope.gain_at(n, total, self.rate);
                let s = self.voice.sample(phase) * amp * g;
                phase += step;
                if phase >= 1.0 {
                    phase -= 1.0;
                }
                s.clamp(i16::MIN as f64, i16::MAX as f64) as i16
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use da_dsp::analysis;

    #[test]
    fn a4_is_440() {
        assert!((note_frequency(69) - 440.0).abs() < 1e-9);
        assert!((note_frequency(81) - 880.0).abs() < 1e-6);
        assert!((note_frequency(57) - 220.0).abs() < 1e-6);
    }

    #[test]
    fn note_has_correct_pitch() {
        let m = MusicSynth::new(8000);
        let s = m.note(69, 100, 500);
        let p440 = analysis::goertzel_power(&s, 8000, 440.0);
        let p660 = analysis::goertzel_power(&s, 8000, 660.0);
        assert!(p440 > p660 * 20.0);
    }

    #[test]
    fn velocity_scales_amplitude() {
        let m = MusicSynth::new(8000);
        let loud = analysis::rms(&m.note(69, 127, 200));
        let soft = analysis::rms(&m.note(69, 32, 200));
        assert!(loud > soft * 2.0);
    }

    #[test]
    fn envelope_shapes_edges() {
        let m = MusicSynth::new(8000);
        let s = m.note(69, 127, 300);
        assert_eq!(s[0], 0);
        let last = *s.last().unwrap();
        assert!(last.unsigned_abs() < 2000, "release did not decay: {last}");
    }

    #[test]
    fn voices_differ() {
        let mut m = MusicSynth::new(8000);
        let sine = m.note(60, 100, 100);
        assert!(m.set_voice("square"));
        let square = m.note(60, 100, 100);
        assert_ne!(sine, square);
        // Square has more harmonic energy at 3x the fundamental.
        let f = note_frequency(60);
        let h3_sine = analysis::goertzel_power(&sine, 8000, f * 3.0);
        let h3_square = analysis::goertzel_power(&square, 8000, f * 3.0);
        assert!(h3_square > h3_sine * 5.0);
    }

    #[test]
    fn unknown_voice_rejected() {
        let mut m = MusicSynth::new(8000);
        assert!(!m.set_voice("theremin"));
        assert!(m.set_voice("SAW"));
    }

    #[test]
    fn tempo_controls_beat_length() {
        let mut m = MusicSynth::new(8000);
        m.set_tempo(120);
        assert_eq!(m.beat_frames(), 4000);
        m.set_tempo(60);
        assert_eq!(m.beat_frames(), 8000);
        m.set_tempo(0);
        assert_eq!(m.tempo(), 20);
    }

    #[test]
    fn envelope_gain_profile() {
        let e = Envelope { attack_ms: 10, decay_ms: 10, sustain: 0.5, release_ms: 10 };
        let rate = 8000;
        // At 8 kHz: attack 80 samples, decay 80, release 80.
        assert_eq!(e.gain_at(0, 1000, rate), 0.0);
        assert!((e.gain_at(80, 1000, rate) - 1.0).abs() < 0.02);
        assert!((e.gain_at(300, 1000, rate) - 0.5).abs() < 0.01);
        assert!(e.gain_at(999, 1000, rate) < 0.05);
    }
}
