//! Phonemes and letter-to-sound rules.
//!
//! A compact phoneme inventory and a rule-based grapheme-to-phoneme
//! converter in the tradition of the Naval Research Laboratory rules:
//! context-sensitive patterns applied left to right, longest match first.
//! Accuracy is secondary to producing *distinct, stable* phonetic units —
//! what the server's speech-synthesizer device class needs to exercise
//! real data paths.

/// The phoneme inventory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phoneme {
    // Vowels.
    /// `a` in "father".
    Aa,
    /// `a` in "cat".
    Ae,
    /// `u` in "but" / schwa.
    Ah,
    /// `aw` in "law".
    Ao,
    /// `e` in "bed".
    Eh,
    /// `ee` in "see".
    Iy,
    /// `i` in "sit".
    Ih,
    /// `o` in "go".
    Ow,
    /// `oo` in "boot".
    Uw,
    /// `oo` in "book".
    Uh,
    /// `ay` in "day".
    Ey,
    /// `i` in "time".
    Ay,
    /// `oy` in "boy".
    Oy,
    /// `ow` in "cow".
    Aw,
    /// `er` in "her".
    Er,
    // Consonants.
    /// `b`.
    B,
    /// `d`.
    D,
    /// `g`.
    G,
    /// `p`.
    P,
    /// `t`.
    T,
    /// `k`.
    K,
    /// `m`.
    M,
    /// `n`.
    N,
    /// `ng` in "sing".
    Ng,
    /// `f`.
    F,
    /// `v`.
    V,
    /// `th` in "thin".
    Th,
    /// `th` in "then".
    Dh,
    /// `s`.
    S,
    /// `z`.
    Z,
    /// `sh`.
    Sh,
    /// `zh` in "measure".
    Zh,
    /// `ch`.
    Ch,
    /// `j` in "judge".
    Jh,
    /// `h`.
    Hh,
    /// `l`.
    L,
    /// `r`.
    R,
    /// `w`.
    W,
    /// `y` in "yes".
    Y,
    /// Inter-word or punctuation silence.
    Sil,
}

impl Phoneme {
    /// Whether the phoneme is voiced (has pitch-pulsed excitation).
    pub fn voiced(self) -> bool {
        use Phoneme::*;
        !matches!(self, P | T | K | F | Th | S | Sh | Ch | Hh | Sil)
    }

    /// Whether the phoneme is a vowel.
    pub fn is_vowel(self) -> bool {
        use Phoneme::*;
        matches!(
            self,
            Aa | Ae | Ah | Ao | Eh | Iy | Ih | Ow | Uw | Uh | Ey | Ay | Oy | Aw | Er
        )
    }

    /// Nominal duration in milliseconds at the default speaking rate.
    pub fn base_duration_ms(self) -> u32 {
        use Phoneme::*;
        match self {
            Sil => 60,
            Aa | Ao | Iy | Uw | Ey | Ay | Oy | Aw | Ow => 140,
            Ae | Ah | Eh | Ih | Uh | Er => 110,
            M | N | Ng | L | R | W | Y => 70,
            S | Z | Sh | Zh | F | V | Th | Dh | Hh => 90,
            B | D | G | P | T | K | Ch | Jh => 60,
        }
    }

    /// Rough formant pair (F1, F2) in Hz for voiced sounds; fricative
    /// noise centre for unvoiced.
    pub fn formants(self) -> (f64, f64) {
        use Phoneme::*;
        match self {
            Aa => (730.0, 1090.0),
            Ae => (660.0, 1720.0),
            Ah => (640.0, 1190.0),
            Ao => (570.0, 840.0),
            Eh => (530.0, 1840.0),
            Iy => (270.0, 2290.0),
            Ih => (390.0, 1990.0),
            Ow => (450.0, 900.0),
            Uw => (300.0, 870.0),
            Uh => (440.0, 1020.0),
            Ey => (400.0, 2100.0),
            Ay => (660.0, 1500.0),
            Oy => (500.0, 1100.0),
            Aw => (700.0, 1100.0),
            Er => (490.0, 1350.0),
            M | N | Ng => (280.0, 1300.0),
            L => (380.0, 1200.0),
            R => (420.0, 1300.0),
            W => (300.0, 700.0),
            Y => (280.0, 2200.0),
            B | P => (400.0, 1000.0),
            D | T => (400.0, 1700.0),
            G | K => (300.0, 2000.0),
            V | F => (1000.0, 2500.0),
            Dh | Th => (1400.0, 2700.0),
            Z | S => (4000.0, 6000.0),
            Zh | Sh => (2200.0, 3500.0),
            Jh | Ch => (2000.0, 3200.0),
            Hh => (1000.0, 1500.0),
            Sil => (0.0, 0.0),
        }
    }
}

/// One grapheme-to-phoneme rule: when `pattern` matches at the cursor
/// (and the contexts hold), emit `phonemes` and advance by the pattern
/// length. `left`/`right` context classes: `#` word edge, `V` a vowel
/// letter, `C` a consonant letter, `.` anything.
struct Rule {
    pattern: &'static str,
    right: char,
    phonemes: &'static [Phoneme],
}

use Phoneme::*;

/// Rules are tried in order at each cursor position; within the table,
/// longer patterns come first so "sh" wins over "s".
const RULES: &[Rule] = &[
    // Multi-letter patterns.
    Rule { pattern: "tion", right: '.', phonemes: &[Sh, Ah, N] },
    Rule { pattern: "ough", right: '.', phonemes: &[Ow] },
    Rule { pattern: "igh", right: '.', phonemes: &[Ay] },
    Rule { pattern: "eigh", right: '.', phonemes: &[Ey] },
    Rule { pattern: "ss", right: '.', phonemes: &[S] },
    Rule { pattern: "sh", right: '.', phonemes: &[Sh] },
    Rule { pattern: "ch", right: '.', phonemes: &[Ch] },
    Rule { pattern: "th", right: '.', phonemes: &[Th] },
    Rule { pattern: "ph", right: '.', phonemes: &[F] },
    Rule { pattern: "wh", right: '.', phonemes: &[W] },
    Rule { pattern: "ck", right: '.', phonemes: &[K] },
    Rule { pattern: "ng", right: '.', phonemes: &[Ng] },
    Rule { pattern: "qu", right: '.', phonemes: &[K, W] },
    Rule { pattern: "oo", right: '.', phonemes: &[Uw] },
    Rule { pattern: "ee", right: '.', phonemes: &[Iy] },
    Rule { pattern: "ea", right: '.', phonemes: &[Iy] },
    Rule { pattern: "ai", right: '.', phonemes: &[Ey] },
    Rule { pattern: "ay", right: '.', phonemes: &[Ey] },
    Rule { pattern: "oa", right: '.', phonemes: &[Ow] },
    Rule { pattern: "ou", right: '.', phonemes: &[Aw] },
    Rule { pattern: "ow", right: '#', phonemes: &[Ow] },
    Rule { pattern: "ow", right: '.', phonemes: &[Aw] },
    Rule { pattern: "oy", right: '.', phonemes: &[Oy] },
    Rule { pattern: "oi", right: '.', phonemes: &[Oy] },
    Rule { pattern: "au", right: '.', phonemes: &[Ao] },
    Rule { pattern: "aw", right: '.', phonemes: &[Ao] },
    Rule { pattern: "er", right: '.', phonemes: &[Er] },
    Rule { pattern: "ir", right: '.', phonemes: &[Er] },
    Rule { pattern: "ur", right: '.', phonemes: &[Er] },
    Rule { pattern: "ar", right: '.', phonemes: &[Aa, R] },
    Rule { pattern: "or", right: '.', phonemes: &[Ao, R] },
    Rule { pattern: "ll", right: '.', phonemes: &[L] },
    Rule { pattern: "tt", right: '.', phonemes: &[T] },
    Rule { pattern: "pp", right: '.', phonemes: &[P] },
    Rule { pattern: "bb", right: '.', phonemes: &[B] },
    Rule { pattern: "dd", right: '.', phonemes: &[D] },
    Rule { pattern: "mm", right: '.', phonemes: &[M] },
    Rule { pattern: "nn", right: '.', phonemes: &[N] },
    Rule { pattern: "rr", right: '.', phonemes: &[R] },
    Rule { pattern: "ff", right: '.', phonemes: &[F] },
    Rule { pattern: "gg", right: '.', phonemes: &[G] },
    Rule { pattern: "zz", right: '.', phonemes: &[Z] },
    // Magic-e: vowel + consonant + final e lengthens the vowel; handled
    // as specific common cases.
    Rule { pattern: "a", right: 'E', phonemes: &[Ey] },
    Rule { pattern: "i", right: 'E', phonemes: &[Ay] },
    Rule { pattern: "o", right: 'E', phonemes: &[Ow] },
    Rule { pattern: "u", right: 'E', phonemes: &[Uw] },
    // Single letters.
    Rule { pattern: "a", right: '.', phonemes: &[Ae] },
    Rule { pattern: "b", right: '.', phonemes: &[B] },
    Rule { pattern: "c", right: 'I', phonemes: &[S] }, // c before e/i/y
    Rule { pattern: "c", right: '.', phonemes: &[K] },
    Rule { pattern: "d", right: '.', phonemes: &[D] },
    Rule { pattern: "e", right: '.', phonemes: &[Eh] },
    Rule { pattern: "f", right: '.', phonemes: &[F] },
    Rule { pattern: "g", right: 'I', phonemes: &[Jh] },
    Rule { pattern: "g", right: '.', phonemes: &[G] },
    Rule { pattern: "h", right: '.', phonemes: &[Hh] },
    Rule { pattern: "i", right: '.', phonemes: &[Ih] },
    Rule { pattern: "j", right: '.', phonemes: &[Jh] },
    Rule { pattern: "k", right: '.', phonemes: &[K] },
    Rule { pattern: "l", right: '.', phonemes: &[L] },
    Rule { pattern: "m", right: '.', phonemes: &[M] },
    Rule { pattern: "n", right: '.', phonemes: &[N] },
    Rule { pattern: "o", right: '.', phonemes: &[Aa] },
    Rule { pattern: "p", right: '.', phonemes: &[P] },
    Rule { pattern: "q", right: '.', phonemes: &[K] },
    Rule { pattern: "r", right: '.', phonemes: &[R] },
    Rule { pattern: "s", right: '.', phonemes: &[S] },
    Rule { pattern: "t", right: '.', phonemes: &[T] },
    Rule { pattern: "u", right: '.', phonemes: &[Ah] },
    Rule { pattern: "v", right: '.', phonemes: &[V] },
    Rule { pattern: "w", right: '.', phonemes: &[W] },
    Rule { pattern: "x", right: '.', phonemes: &[K, S] },
    Rule { pattern: "y", right: '#', phonemes: &[Iy] },
    Rule { pattern: "y", right: '.', phonemes: &[Y] },
    Rule { pattern: "z", right: '.', phonemes: &[Z] },
];

fn right_context_matches(class: char, word: &[u8], after: usize) -> bool {
    match class {
        '.' => true,
        '#' => after >= word.len(),
        // 'I': next letter is e, i or y (soft c/g).
        'I' => matches!(word.get(after), Some(b'e') | Some(b'i') | Some(b'y')),
        // 'E': consonant followed by word-final 'e' (magic e).
        'E' => {
            matches!(word.get(after), Some(c) if !b"aeiou".contains(c))
                && word.get(after + 1) == Some(&b'e')
                && after + 2 == word.len()
        }
        _ => false,
    }
}

/// Converts a lowercase word to phonemes by rule.
pub fn word_to_phonemes(word: &str) -> Vec<Phoneme> {
    let bytes = word.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        // Final 'e': silent when an earlier vowel carries the syllable
        // ("time"), otherwise the long vowel itself ("she", "be").
        if bytes[i] == b'e' && i + 1 == bytes.len() {
            let earlier_vowel = bytes[..i].iter().any(|c| b"aeiouy".contains(c));
            if !earlier_vowel {
                out.push(Iy);
            }
            break;
        }
        let mut matched = false;
        for rule in RULES {
            let pat = rule.pattern.as_bytes();
            if bytes[i..].starts_with(pat) && right_context_matches(rule.right, bytes, i + pat.len())
            {
                out.extend_from_slice(rule.phonemes);
                i += pat.len();
                matched = true;
                break;
            }
        }
        if !matched {
            // Unknown character: skip.
            i += 1;
        }
    }
    out
}

/// Parses a user-supplied pronunciation string of phoneme names separated
/// by spaces (for exception lists, paper §5.1 `SetExceptionList`), e.g.
/// `"d eh k"`. Unknown names are ignored.
pub fn parse_pronunciation(pron: &str) -> Vec<Phoneme> {
    pron.split_whitespace().filter_map(name_to_phoneme).collect()
}

fn name_to_phoneme(name: &str) -> Option<Phoneme> {
    Some(match name {
        "aa" => Aa,
        "ae" => Ae,
        "ah" => Ah,
        "ao" => Ao,
        "eh" => Eh,
        "iy" => Iy,
        "ih" => Ih,
        "ow" => Ow,
        "uw" => Uw,
        "uh" => Uh,
        "ey" => Ey,
        "ay" => Ay,
        "oy" => Oy,
        "aw" => Aw,
        "er" => Er,
        "b" => B,
        "d" => D,
        "g" => G,
        "p" => P,
        "t" => T,
        "k" => K,
        "m" => M,
        "n" => N,
        "ng" => Ng,
        "f" => F,
        "v" => V,
        "th" => Th,
        "dh" => Dh,
        "s" => S,
        "z" => Z,
        "sh" => Sh,
        "zh" => Zh,
        "ch" => Ch,
        "jh" => Jh,
        "hh" | "h" => Hh,
        "l" => L,
        "r" => R,
        "w" => W,
        "y" => Y,
        "sil" => Sil,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digraphs_beat_single_letters() {
        assert_eq!(word_to_phonemes("she"), vec![Sh, Iy]);
        assert_eq!(word_to_phonemes("thin")[0], Th);
        assert_eq!(word_to_phonemes("phone")[0], F);
    }

    #[test]
    fn soft_and_hard_c() {
        assert_eq!(word_to_phonemes("cat")[0], K);
        assert_eq!(word_to_phonemes("cell")[0], S);
        assert_eq!(word_to_phonemes("city")[0], S);
    }

    #[test]
    fn magic_e() {
        assert_eq!(word_to_phonemes("time"), vec![T, Ay, M]);
        assert_eq!(word_to_phonemes("home"), vec![Hh, Ow, M]);
        // Without magic e the vowel stays short.
        assert_eq!(word_to_phonemes("tim"), vec![T, Ih, M]);
    }

    #[test]
    fn final_y_is_vowel() {
        assert_eq!(*word_to_phonemes("city").last().unwrap(), Iy);
        assert_eq!(word_to_phonemes("yes")[0], Y);
    }

    #[test]
    fn ow_final_vs_medial() {
        // Word-final "ow" reads long ("show", "know"); medial "ow"
        // reads as the diphthong ("howl", "tower").
        assert_eq!(word_to_phonemes("show"), vec![Sh, Ow]);
        assert_eq!(word_to_phonemes("howl"), vec![Hh, Aw, L]);
    }

    #[test]
    fn every_letter_produces_something() {
        for c in b'a'..=b'z' {
            if c == b'e' {
                continue; // final silent e legitimately drops
            }
            let w = String::from_utf8(vec![c]).unwrap();
            assert!(!word_to_phonemes(&w).is_empty(), "letter {}", c as char);
        }
    }

    #[test]
    fn pronunciation_strings_parse() {
        assert_eq!(parse_pronunciation("d eh k"), vec![D, Eh, K]);
        assert_eq!(parse_pronunciation("zz d"), vec![D]);
        assert!(parse_pronunciation("").is_empty());
    }

    #[test]
    fn voicing_classification() {
        assert!(Aa.voiced());
        assert!(Z.voiced());
        assert!(!S.voiced());
        assert!(!T.voiced());
        assert!(!Sil.voiced());
        assert!(Aa.is_vowel());
        assert!(!M.is_vowel());
    }

    #[test]
    fn durations_positive() {
        for p in [Aa, S, T, Sil, M, Ch] {
            assert!(p.base_duration_ms() > 0);
        }
    }
}
