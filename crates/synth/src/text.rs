//! Text normalisation for speech synthesis.
//!
//! The first step of synthesis "converts the text to phonetic units;
//! although a linguistically difficult task, this is most easily
//! implemented on a general purpose processor" (paper §1.1). Before
//! letter-to-sound rules run, raw text is normalised: digits and numbers
//! are expanded to words, common abbreviations are spelled out, and
//! punctuation becomes explicit pause tokens.

/// A normalised token: a speakable word or a pause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// A lowercase word of letters only.
    Word(String),
    /// A pause, in milliseconds.
    Pause(u32),
}

const ONES: [&str; 20] = [
    "zero", "one", "two", "three", "four", "five", "six", "seven", "eight", "nine", "ten",
    "eleven", "twelve", "thirteen", "fourteen", "fifteen", "sixteen", "seventeen", "eighteen",
    "nineteen",
];

const TENS: [&str; 10] =
    ["", "", "twenty", "thirty", "forty", "fifty", "sixty", "seventy", "eighty", "ninety"];

/// Expands a non-negative integer below one million into words.
pub fn number_to_words(n: u64) -> Vec<String> {
    fn under_thousand(n: u64, out: &mut Vec<String>) {
        if n >= 100 {
            out.push(ONES[(n / 100) as usize].to_string());
            out.push("hundred".to_string());
            if !n.is_multiple_of(100) {
                under_thousand(n % 100, out);
            }
        } else if n >= 20 {
            out.push(TENS[(n / 10) as usize].to_string());
            if !n.is_multiple_of(10) {
                out.push(ONES[(n % 10) as usize].to_string());
            }
        } else {
            out.push(ONES[n as usize].to_string());
        }
    }
    let mut out = Vec::new();
    if n >= 1_000_000 {
        // Speak huge numbers digit by digit.
        for d in n.to_string().bytes() {
            out.push(ONES[(d - b'0') as usize].to_string());
        }
        return out;
    }
    if n >= 1000 {
        under_thousand(n / 1000, &mut out);
        out.push("thousand".to_string());
        if !n.is_multiple_of(1000) {
            under_thousand(n % 1000, &mut out);
        }
        return out;
    }
    under_thousand(n, &mut out);
    out
}

/// Expands a digit string (e.g. a phone number) digit by digit.
pub fn digits_to_words(digits: &str) -> Vec<String> {
    digits
        .bytes()
        .filter(|b| b.is_ascii_digit())
        .map(|d| ONES[(d - b'0') as usize].to_string())
        .collect()
}

fn abbreviation(word: &str) -> Option<&'static [&'static str]> {
    Some(match word {
        "mr" => &["mister"],
        "mrs" => &["missus"],
        "dr" => &["doctor"],
        "st" => &["street"],
        "etc" => &["et", "cetera"],
        "vs" => &["versus"],
        "dec" => &["deck"],
        _ => return None,
    })
}

/// Normalises raw text into speakable tokens.
///
/// # Examples
///
/// ```
/// use da_synth::text::{normalize, Token};
/// let toks = normalize("Room 12.");
/// assert_eq!(
///     toks,
///     vec![
///         Token::Word("room".into()),
///         Token::Word("twelve".into()),
///         Token::Pause(400),
///     ]
/// );
/// ```
pub fn normalize(text: &str) -> Vec<Token> {
    let mut out = Vec::new();
    let mut word = String::new();
    let mut digits = String::new();
    let flush_word = |word: &mut String, out: &mut Vec<Token>| {
        if word.is_empty() {
            return;
        }
        let w = word.to_lowercase();
        match abbreviation(&w) {
            Some(expansion) => {
                for e in expansion {
                    out.push(Token::Word((*e).to_string()));
                }
            }
            None => out.push(Token::Word(w)),
        }
        word.clear();
    };
    let flush_digits = |digits: &mut String, out: &mut Vec<Token>| {
        if digits.is_empty() {
            return;
        }
        // Short digit runs read as numbers; long runs (phone numbers)
        // read digit by digit.
        if digits.len() <= 4 {
            if let Ok(n) = digits.parse::<u64>() {
                for w in number_to_words(n) {
                    out.push(Token::Word(w));
                }
                digits.clear();
                return;
            }
        }
        for w in digits_to_words(digits) {
            out.push(Token::Word(w));
        }
        digits.clear();
    };
    for ch in text.chars() {
        match ch {
            'a'..='z' | 'A'..='Z' | '\'' => {
                flush_digits(&mut digits, &mut out);
                if ch != '\'' {
                    word.push(ch);
                }
            }
            '0'..='9' => {
                flush_word(&mut word, &mut out);
                digits.push(ch);
            }
            '.' | '!' | '?' => {
                flush_word(&mut word, &mut out);
                flush_digits(&mut digits, &mut out);
                if !matches!(out.last(), Some(Token::Pause(_))) {
                    out.push(Token::Pause(400));
                }
            }
            ',' | ';' | ':' | '-' => {
                flush_word(&mut word, &mut out);
                flush_digits(&mut digits, &mut out);
                if !matches!(out.last(), Some(Token::Pause(_))) {
                    out.push(Token::Pause(200));
                }
            }
            _ => {
                flush_word(&mut word, &mut out);
                flush_digits(&mut digits, &mut out);
            }
        }
    }
    flush_word(&mut word, &mut out);
    flush_digits(&mut digits, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(toks: &[Token]) -> Vec<String> {
        toks.iter()
            .filter_map(|t| match t {
                Token::Word(w) => Some(w.clone()),
                Token::Pause(_) => None,
            })
            .collect()
    }

    #[test]
    fn simple_sentence() {
        let t = normalize("Hello world");
        assert_eq!(words(&t), vec!["hello", "world"]);
    }

    #[test]
    fn numbers_expand() {
        assert_eq!(number_to_words(0), vec!["zero"]);
        assert_eq!(number_to_words(15), vec!["fifteen"]);
        assert_eq!(number_to_words(42), vec!["forty", "two"]);
        assert_eq!(number_to_words(300), vec!["three", "hundred"]);
        assert_eq!(number_to_words(1991), vec!["one", "thousand", "nine", "hundred", "ninety", "one"]);
        assert_eq!(number_to_words(70), vec!["seventy"]);
    }

    #[test]
    fn huge_numbers_read_digitwise() {
        assert_eq!(number_to_words(5551212), words(&normalize("5551212")));
        assert_eq!(number_to_words(1234567)[0], "one");
        assert_eq!(number_to_words(1234567).len(), 7);
    }

    #[test]
    fn short_digit_runs_read_as_numbers() {
        assert_eq!(words(&normalize("room 42")), vec!["room", "forty", "two"]);
    }

    #[test]
    fn long_digit_runs_read_digitwise() {
        assert_eq!(
            words(&normalize("call 55512")),
            vec!["call", "five", "five", "five", "one", "two"]
        );
    }

    #[test]
    fn punctuation_pauses() {
        let t = normalize("yes, no. maybe");
        assert_eq!(
            t,
            vec![
                Token::Word("yes".into()),
                Token::Pause(200),
                Token::Word("no".into()),
                Token::Pause(400),
                Token::Word("maybe".into()),
            ]
        );
    }

    #[test]
    fn consecutive_punctuation_single_pause() {
        let t = normalize("wait... what");
        let pauses = t.iter().filter(|t| matches!(t, Token::Pause(_))).count();
        assert_eq!(pauses, 1);
    }

    #[test]
    fn abbreviations_expand() {
        assert_eq!(words(&normalize("Dr Smith")), vec!["doctor", "smith"]);
        assert_eq!(words(&normalize("DEC")), vec!["deck"]);
    }

    #[test]
    fn apostrophes_elide() {
        assert_eq!(words(&normalize("don't")), vec!["dont"]);
    }

    #[test]
    fn empty_and_symbol_only() {
        assert!(normalize("").is_empty());
        assert!(words(&normalize("@#$%")).is_empty());
    }
}
