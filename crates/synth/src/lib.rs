//! Speech and music substrate for the desktop-audio system.
//!
//! The paper's server exposes speech synthesizer, speech recognizer and
//! music synthesizer device classes (§5.1). The 1991 implementations ran
//! on DSP hardware; the paper itself observes that "many speech processing
//! techniques which have traditionally been implemented on DSPs are now
//! within the capabilities of general purpose microprocessors" (§1.1), so
//! this crate implements all three in software:
//!
//! - [`tts`] — rule-based text-to-speech: text normalisation, letter-to-
//!   phoneme rules with an exception list, and a formant-style waveform
//!   generator (two processing steps, exactly as §1.1 describes);
//! - [`recog`] — small-vocabulary, speaker-trained word recognition:
//!   frame features (energy, zero crossings, band energies) matched by
//!   dynamic time warping, as §1.1's description of recognizers implies;
//! - [`music`] — note-based synthesis with selectable voices and an ADSR
//!   envelope.

pub mod music;
pub mod phoneme;
pub mod recog;
pub mod text;
pub mod tts;
