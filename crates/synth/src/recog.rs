//! Small-vocabulary speech recognition.
//!
//! The paper's recognizer class detects words spoken by a user, trained
//! per application and user (§5.1: `Train`, `SetVocabulary`,
//! `AdjustContext`, `SaveVocabulary`). Recognition of 1991 vintage
//! "usually employs a digital signal processor to extract acoustically
//! significant features from the audio signal, and a general purpose
//! processor for pattern matching" (§1.1). Both halves are implemented
//! here in software:
//!
//! - **features**: 20 ms frames reduced to log energy, zero-crossing rate
//!   and four band energies (a crude filter bank);
//! - **matching**: dynamic time warping against stored word templates,
//!   with energy-based endpoint detection.

use da_dsp::analysis::{goertzel_power, rms, zero_crossings};
use std::collections::HashMap;

/// Frame length in samples at 8 kHz (20 ms).
const FRAME: usize = 160;
/// Features per frame.
const NDIM: usize = 6;
/// RMS threshold separating speech from silence.
const SPEECH_RMS: f64 = 400.0;
/// Consecutive silent frames ending an utterance (320 ms).
const END_SILENCE: usize = 16;
/// Minimum speech frames for a valid utterance (100 ms).
const MIN_SPEECH: usize = 5;

/// A feature vector for one frame.
pub type Feature = [f64; NDIM];

/// Extracts the per-frame feature sequence from 8 kHz linear samples.
pub fn extract_features(samples: &[i16]) -> Vec<Feature> {
    samples
        .chunks(FRAME)
        .filter(|c| c.len() == FRAME)
        .map(|frame| {
            let energy = rms(frame).max(1.0).ln();
            let zcr = zero_crossings(frame) as f64 / FRAME as f64;
            let bands = [250.0, 500.0, 1000.0, 2000.0]
                .map(|f| goertzel_power(frame, 8000, f).max(1.0).ln());
            [energy, zcr * 10.0, bands[0], bands[1], bands[2], bands[3]]
        })
        .collect()
}

fn frame_distance(a: &Feature, b: &Feature) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

/// Dynamic-time-warping distance between two feature sequences,
/// normalised by path length. Lower is more similar.
pub fn dtw_distance(a: &[Feature], b: &[Feature]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return f64::INFINITY;
    }
    let n = a.len();
    let m = b.len();
    let mut prev = vec![f64::INFINITY; m + 1];
    let mut cur = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        cur[0] = f64::INFINITY;
        for j in 1..=m {
            let cost = frame_distance(&a[i - 1], &b[j - 1]);
            cur[j] = cost + prev[j].min(cur[j - 1]).min(prev[j - 1]);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m] / (n + m) as f64
}

/// A recognition result.
#[derive(Debug, Clone, PartialEq)]
pub struct Recognition {
    /// The matched word.
    pub word: String,
    /// Match quality in milli-units (1000 = identical to the template).
    pub score: u32,
}

/// A trainable, streaming word recognizer.
#[derive(Debug, Clone, Default)]
pub struct Recognizer {
    templates: HashMap<String, Vec<Vec<Feature>>>,
    vocabulary: Option<Vec<String>>,
    /// Acceptance bias from `AdjustContext`: positive loosens matching,
    /// negative tightens it.
    context_bias: i32,
    // Streaming endpointer state.
    buf: Vec<i16>,
    utterance: Vec<Feature>,
    in_speech: bool,
    silent_run: usize,
}

impl Recognizer {
    /// Creates an empty recognizer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trains a word from an 8 kHz utterance recording (the `Train`
    /// command). Multiple trainings of one word accumulate templates.
    pub fn train(&mut self, word: &str, samples: &[i16]) {
        let feats = trim_silence(extract_features(samples));
        if feats.len() >= MIN_SPEECH {
            self.templates.entry(word.to_lowercase()).or_default().push(feats);
        }
    }

    /// Number of stored templates for a word.
    pub fn template_count(&self, word: &str) -> usize {
        self.templates.get(&word.to_lowercase()).map_or(0, |t| t.len())
    }

    /// Restricts recognition to `words` (the `SetVocabulary` command);
    /// an empty list reverts to the full trained set.
    pub fn set_vocabulary(&mut self, words: &[String]) {
        if words.is_empty() {
            self.vocabulary = None;
        } else {
            self.vocabulary = Some(words.iter().map(|w| w.to_lowercase()).collect());
        }
    }

    /// Biases acceptance (the `AdjustContext` command).
    pub fn adjust_context(&mut self, bias: i32) {
        self.context_bias = bias.clamp(-10, 10);
    }

    /// Feeds 8 kHz samples; returns a recognition when an utterance
    /// endpoint is found and a template matches.
    pub fn push(&mut self, samples: &[i16]) -> Vec<Recognition> {
        let mut results = Vec::new();
        self.buf.extend_from_slice(samples);
        while self.buf.len() >= FRAME {
            let frame: Vec<i16> = self.buf.drain(..FRAME).collect();
            let loud = rms(&frame) >= SPEECH_RMS;
            if loud {
                self.in_speech = true;
                self.silent_run = 0;
            } else if self.in_speech {
                self.silent_run += 1;
            }
            if self.in_speech {
                self.utterance.extend(extract_features(&frame));
                if self.silent_run >= END_SILENCE {
                    let utt = trim_silence(std::mem::take(&mut self.utterance));
                    self.in_speech = false;
                    self.silent_run = 0;
                    if utt.len() >= MIN_SPEECH {
                        if let Some(r) = self.classify(&utt) {
                            results.push(r);
                        }
                    }
                }
            }
        }
        results
    }

    /// Classifies a complete utterance against the active vocabulary.
    pub fn classify(&self, utterance: &[Feature]) -> Option<Recognition> {
        let mut best: Option<(f64, &str)> = None;
        for (word, templates) in &self.templates {
            if let Some(vocab) = &self.vocabulary {
                if !vocab.contains(word) {
                    continue;
                }
            }
            for t in templates {
                let d = dtw_distance(utterance, t);
                if best.is_none_or(|(bd, _)| d < bd) {
                    best = Some((d, word));
                }
            }
        }
        let (dist, word) = best?;
        // Acceptance threshold, loosened/tightened by context bias.
        let threshold = 3.0 * (1.0 + self.context_bias as f64 * 0.1);
        if dist > threshold {
            return None;
        }
        let score = (1000.0 / (1.0 + dist)).min(1000.0) as u32;
        Some(Recognition { word: word.to_string(), score })
    }

    /// Serialises all trained templates (the `SaveVocabulary` command).
    pub fn save(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"DAV1");
        out.extend_from_slice(&(self.templates.len() as u32).to_le_bytes());
        let mut words: Vec<_> = self.templates.keys().collect();
        words.sort();
        for word in words {
            let templates = &self.templates[word];
            out.extend_from_slice(&(word.len() as u32).to_le_bytes());
            out.extend_from_slice(word.as_bytes());
            out.extend_from_slice(&(templates.len() as u32).to_le_bytes());
            for t in templates {
                out.extend_from_slice(&(t.len() as u32).to_le_bytes());
                for f in t {
                    for v in f {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
        }
        out
    }

    /// Restores templates from [`Recognizer::save`] output.
    pub fn load(data: &[u8]) -> Option<Self> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
            let s = data.get(*pos..*pos + n)?;
            *pos += n;
            Some(s)
        };
        if take(&mut pos, 4)? != b"DAV1" {
            return None;
        }
        let nwords = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
        let mut r = Recognizer::new();
        for _ in 0..nwords {
            let wlen = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
            let word = String::from_utf8(take(&mut pos, wlen)?.to_vec()).ok()?;
            let ntmpl = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
            let mut templates = Vec::with_capacity(ntmpl);
            for _ in 0..ntmpl {
                let nframes = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
                let mut t = Vec::with_capacity(nframes);
                for _ in 0..nframes {
                    let mut f = [0f64; NDIM];
                    for v in f.iter_mut() {
                        *v = f64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?);
                    }
                    t.push(f);
                }
                templates.push(t);
            }
            r.templates.insert(word, templates);
        }
        Some(r)
    }
}

fn trim_silence(mut feats: Vec<Feature>) -> Vec<Feature> {
    // Feature 0 is log RMS; trim leading/trailing frames below the
    // speech threshold.
    let thresh = SPEECH_RMS.ln();
    let start = feats.iter().position(|f| f[0] >= thresh).unwrap_or(feats.len());
    let end = feats.iter().rposition(|f| f[0] >= thresh).map_or(0, |i| i + 1);
    if start >= end {
        return Vec::new();
    }
    feats.truncate(end);
    feats.drain(..start);
    feats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tts::Synthesizer;

    fn utterance(word: &str) -> Vec<i16> {
        Synthesizer::new(8000).speak(word)
    }

    fn padded(word: &str) -> Vec<i16> {
        let mut s = vec![0i16; 2400];
        s.extend(utterance(word));
        s.extend(std::iter::repeat_n(0i16, 4000));
        s
    }

    #[test]
    fn features_have_fixed_dimension() {
        let f = extract_features(&utterance("test"));
        assert!(!f.is_empty());
        assert!(f.iter().all(|v| v.iter().all(|x| x.is_finite())));
    }

    #[test]
    fn dtw_identity_is_zero() {
        let f = extract_features(&utterance("zero"));
        assert!(dtw_distance(&f, &f) < 1e-9);
    }

    #[test]
    fn dtw_orders_similarity() {
        let yes1 = extract_features(&utterance("yes"));
        let no = extract_features(&utterance("no"));
        // TTS is deterministic, so perturb the pitch for a second "yes".
        let mut tts = Synthesizer::new(8000);
        tts.set_values(170, 130);
        let yes2 = extract_features(&tts.speak("yes"));
        assert!(dtw_distance(&yes1, &yes2) < dtw_distance(&yes1, &no));
    }

    #[test]
    fn trains_and_recognises() {
        let mut r = Recognizer::new();
        r.train("yes", &utterance("yes"));
        r.train("no", &utterance("no"));
        r.train("stop", &utterance("stop"));
        assert_eq!(r.template_count("yes"), 1);
        let got = r.push(&padded("yes"));
        assert_eq!(got.len(), 1, "expected one recognition, got {got:?}");
        assert_eq!(got[0].word, "yes");
        assert!(got[0].score > 500);
    }

    #[test]
    fn distinguishes_vocabulary_words() {
        let mut r = Recognizer::new();
        for w in ["yes", "no", "stop", "play"] {
            r.train(w, &utterance(w));
        }
        for w in ["yes", "no", "stop", "play"] {
            let got = r.push(&padded(w));
            assert_eq!(got.len(), 1, "word {w}: {got:?}");
            assert_eq!(got[0].word, w);
        }
    }

    #[test]
    fn vocabulary_restriction() {
        let mut r = Recognizer::new();
        r.train("yes", &utterance("yes"));
        r.train("no", &utterance("no"));
        r.set_vocabulary(&["no".to_string()]);
        let got = r.push(&padded("no"));
        assert_eq!(got[0].word, "no");
        // A "yes" utterance can now only match "no" — or be rejected.
        let got = r.push(&padded("yes"));
        assert!(got.is_empty() || got[0].word == "no");
        // Empty vocabulary restores everything.
        r.set_vocabulary(&[]);
        let got = r.push(&padded("yes"));
        assert_eq!(got[0].word, "yes");
    }

    #[test]
    fn silence_produces_nothing() {
        let mut r = Recognizer::new();
        r.train("yes", &utterance("yes"));
        assert!(r.push(&vec![0i16; 32000]).is_empty());
    }

    #[test]
    fn untrained_recognizer_rejects() {
        let mut r = Recognizer::new();
        assert!(r.push(&padded("hello")).is_empty());
    }

    #[test]
    fn tight_context_rejects_marginal() {
        let mut r = Recognizer::new();
        r.train("yes", &utterance("yes"));
        r.adjust_context(-10);
        // A quite different word should fail the tightened threshold.
        let got = r.push(&padded("completely"));
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn save_load_roundtrip() {
        let mut r = Recognizer::new();
        r.train("yes", &utterance("yes"));
        r.train("no", &utterance("no"));
        let blob = r.save();
        let mut r2 = Recognizer::load(&blob).expect("load");
        assert_eq!(r2.template_count("yes"), 1);
        assert_eq!(r2.template_count("no"), 1);
        let got = r2.push(&padded("yes"));
        assert_eq!(got[0].word, "yes");
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(Recognizer::load(b"junk").is_none());
        assert!(Recognizer::load(b"").is_none());
        assert!(Recognizer::load(b"DAV1\xff\xff\xff\xff").is_none());
    }

    #[test]
    fn chunked_streaming_equivalent() {
        let mut r1 = Recognizer::new();
        r1.train("go", &utterance("go"));
        let mut r2 = r1.clone();
        let s = padded("go");
        let whole = r1.push(&s);
        let mut chunked = Vec::new();
        for chunk in s.chunks(333) {
            chunked.extend(r2.push(chunk));
        }
        assert_eq!(whole, chunked);
    }
}
