//! Property tests over the DSP substrate's core invariants.

use proptest::prelude::*;

proptest! {
    // --- G.711 -------------------------------------------------------------

    #[test]
    fn mulaw_idempotent_on_code_space(sample in any::<i16>()) {
        // decode(encode(x)) is a fixed point of the codec.
        let once = da_dsp::mulaw::decode(da_dsp::mulaw::encode(sample));
        let twice = da_dsp::mulaw::decode(da_dsp::mulaw::encode(once));
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn alaw_idempotent_on_code_space(sample in any::<i16>()) {
        let once = da_dsp::alaw::decode(da_dsp::alaw::encode(sample));
        let twice = da_dsp::alaw::decode(da_dsp::alaw::encode(once));
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn mulaw_relative_error_bounded(sample in -32000i16..32000) {
        let back = da_dsp::mulaw::decode(da_dsp::mulaw::encode(sample)) as i32;
        let err = (back - sample as i32).abs();
        let bound = ((sample as i32).abs() / 16).max(16) + 16;
        prop_assert!(err <= bound, "sample {} err {}", sample, err);
    }

    // --- ADPCM --------------------------------------------------------------

    #[test]
    fn adpcm_streaming_equals_oneshot(
        pcm in prop::collection::vec(any::<i16>(), 0..2000),
        chunk in 1usize..97,
    ) {
        let oneshot = da_dsp::adpcm::encode_slice(&pcm);
        let mut enc = da_dsp::adpcm::Encoder::new();
        let mut streamed = Vec::new();
        for c in pcm.chunks(chunk) {
            enc.encode(c, &mut streamed);
        }
        enc.finish(&mut streamed);
        prop_assert_eq!(oneshot, streamed);
    }

    #[test]
    fn adpcm_decode_length(pcm in prop::collection::vec(any::<i16>(), 0..2000)) {
        let encoded = da_dsp::adpcm::encode_slice(&pcm);
        let decoded = da_dsp::adpcm::decode_slice(&encoded);
        // Two samples per byte, rounded up to an even count.
        prop_assert_eq!(decoded.len(), pcm.len() + pcm.len() % 2);
    }

    // --- Mixing and gain ------------------------------------------------------

    #[test]
    fn mix_never_wraps(
        a in prop::collection::vec(any::<i16>(), 64),
        bvec in prop::collection::vec(any::<i16>(), 64),
        pct in 0u8..=100,
    ) {
        let mut acc = a.clone();
        da_dsp::mix::mix_into(&mut acc, &bvec, pct);
        for (i, (&orig, &mixed)) in a.iter().zip(acc.iter()).enumerate() {
            let exact = orig as i64 + (bvec[i] as i64 * pct as i64) / 100;
            let clamped = exact.clamp(i16::MIN as i64, i16::MAX as i64) as i16;
            prop_assert_eq!(mixed, clamped);
        }
    }

    #[test]
    fn gain_monotone_and_bounded(samples in prop::collection::vec(any::<i16>(), 0..128), g in 0u32..4000) {
        let mut out = samples.clone();
        da_dsp::gain::apply(&mut out, g);
        for (&orig, &scaled) in samples.iter().zip(out.iter()) {
            // Sign is preserved (or zeroed).
            prop_assert!(orig.signum() == scaled.signum() || scaled == 0 || orig == 0
                || (orig == i16::MIN && scaled == i16::MIN));
            if g <= 1000 {
                prop_assert!(scaled.unsigned_abs() <= orig.unsigned_abs());
            }
        }
    }

    // --- Resampling -----------------------------------------------------------

    #[test]
    fn resampler_streaming_equals_oneshot(
        len in 0usize..3000,
        chunk in 1usize..257,
        rates in prop::sample::select(vec![(8000u32, 16000u32), (8000, 11025), (44100, 8000), (16000, 8000)]),
    ) {
        let pcm = da_dsp::tone::sine(rates.0, 440.0, len, 9000);
        let oneshot = da_dsp::resample::resample(&pcm, rates.0, rates.1);
        let mut r = da_dsp::resample::Resampler::new(rates.0, rates.1);
        let mut streamed = Vec::new();
        for c in pcm.chunks(chunk) {
            streamed.extend(r.push(c));
        }
        streamed.extend(r.finish());
        prop_assert_eq!(oneshot, streamed);
    }

    #[test]
    fn resampler_length_tracks_ratio(len in 100usize..4000) {
        let pcm = vec![0i16; len];
        let out = da_dsp::resample::resample(&pcm, 8000, 44100);
        let expect = len as f64 * 44100.0 / 8000.0;
        prop_assert!((out.len() as f64 - expect).abs() <= 8.0,
            "len {} out {} expect {}", len, out.len(), expect);
    }

    // --- Silence handling -------------------------------------------------------

    #[test]
    fn pause_compression_never_grows(
        samples in prop::collection::vec(-2000i16..2000, 0..2000),
        threshold in 1u16..500,
        max_pause in 1usize..500,
    ) {
        let out = da_dsp::silence::compress_pauses(&samples, threshold, max_pause);
        prop_assert!(out.len() <= samples.len());
        // Loud samples all survive.
        let loud_in = samples.iter().filter(|s| s.unsigned_abs() >= threshold as u32 as u16).count();
        let loud_out = out.iter().filter(|s| s.unsigned_abs() >= threshold as u32 as u16).count();
        prop_assert_eq!(loud_in, loud_out);
    }

    #[test]
    fn pause_detector_needs_signal_first(min_silence in 1u64..1000) {
        let mut det = da_dsp::silence::PauseDetector::new(100, min_silence);
        // Pure silence never triggers: the utterance hasn't begun.
        prop_assert!(!det.push(&vec![0i16; (min_silence * 2) as usize]));
    }

    // --- WAV ----------------------------------------------------------------------

    #[test]
    fn wav_pcm16_roundtrip(samples in prop::collection::vec(any::<i16>(), 0..2000), rate in 1u32..100_000) {
        let bytes = da_dsp::wav::encode_pcm16(rate, 1, &samples);
        let decoded = da_dsp::wav::decode(&bytes).expect("wav decode");
        prop_assert_eq!(decoded.sample_rate, rate);
        prop_assert_eq!(decoded.samples, samples);
    }

    #[test]
    fn wav_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = da_dsp::wav::decode(&bytes);
    }

    // --- DTMF -----------------------------------------------------------------------

    #[test]
    fn dtmf_single_digit_always_detected(digit in prop::sample::select(b"0123456789*#ABCD".to_vec())) {
        let samples = da_dsp::dtmf::digit(8000, digit, 100, 100, 12000).expect("valid digit");
        let mut det = da_dsp::dtmf::Detector::new(8000);
        prop_assert_eq!(det.push(&samples), vec![digit]);
    }

    #[test]
    fn dtmf_detector_never_panics(samples in prop::collection::vec(any::<i16>(), 0..2000)) {
        let mut det = da_dsp::dtmf::Detector::new(8000);
        let _ = det.push(&samples);
    }
}
