//! Silence detection and pause compression.
//!
//! Recorders may detect pauses to terminate recording (the answering
//! machine of paper §5.9 stops "after a pause") and may "compress the
//! recorded audio by removing pauses" (paper §5.1 device attributes).

/// Streaming pause detector: reports when `min_silence` consecutive
/// samples stay below `threshold`.
#[derive(Debug, Clone)]
pub struct PauseDetector {
    threshold: u16,
    min_silence: u64,
    run: u64,
    /// Set once the pause condition has been met; latches until reset.
    triggered: bool,
    /// Whether any non-silent sample has been seen (a pause only counts
    /// after speech has begun).
    heard_signal: bool,
}

impl PauseDetector {
    /// Creates a detector: `min_silence` consecutive sub-`threshold`
    /// samples end the utterance.
    pub fn new(threshold: u16, min_silence: u64) -> Self {
        PauseDetector { threshold, min_silence, run: 0, triggered: false, heard_signal: false }
    }

    /// Feeds samples; returns `true` if the pause condition has been met
    /// (now or previously).
    pub fn push(&mut self, samples: &[i16]) -> bool {
        if self.triggered {
            return true;
        }
        for &s in samples {
            if s.unsigned_abs() < self.threshold as u32 as u16 {
                if self.heard_signal {
                    self.run += 1;
                    if self.run >= self.min_silence {
                        self.triggered = true;
                        return true;
                    }
                }
            } else {
                self.heard_signal = true;
                self.run = 0;
            }
        }
        false
    }

    /// Whether the detector has fired.
    pub fn triggered(&self) -> bool {
        self.triggered
    }

    /// Resets for a new utterance.
    pub fn reset(&mut self) {
        self.run = 0;
        self.triggered = false;
        self.heard_signal = false;
    }
}

/// Removes pauses longer than `max_pause` samples, leaving exactly
/// `max_pause` samples of each long pause so speech rhythm survives
/// (pause compression, paper §5.1).
// rt-ok(fn): record finalization, runs once per completed recording
pub fn compress_pauses(samples: &[i16], threshold: u16, max_pause: usize) -> Vec<i16> {
    let mut out = Vec::with_capacity(samples.len());
    let mut run = 0usize;
    for &s in samples {
        if s.unsigned_abs() < threshold as u32 as u16 {
            run += 1;
            if run <= max_pause {
                out.push(s);
            }
        } else {
            run = 0;
            out.push(s);
        }
    }
    out
}

/// Classifies fixed-size frames as speech or silence by RMS; returns one
/// bool per frame (`true` = speech). Used by the recognizer for endpoint
/// detection.
pub fn frame_activity(samples: &[i16], frame: usize, threshold_rms: f64) -> Vec<bool> {
    samples
        .chunks(frame)
        .map(|c| crate::analysis::rms(c) >= threshold_rms)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tone;

    fn speech_then_silence() -> Vec<i16> {
        let mut s = tone::sine(8000, 300.0, 8000, 10000);
        s.extend(std::iter::repeat_n(0i16, 8000));
        s
    }

    #[test]
    fn detects_trailing_pause() {
        let mut det = PauseDetector::new(200, 4000);
        assert!(det.push(&speech_then_silence()));
        assert!(det.triggered());
    }

    #[test]
    fn leading_silence_does_not_trigger() {
        let mut det = PauseDetector::new(200, 4000);
        // 2 s of silence before any speech: not a pause, the caller just
        // hasn't started talking.
        assert!(!det.push(&vec![0i16; 16000]));
        assert!(!det.push(&tone::sine(8000, 300.0, 4000, 10000)));
        assert!(det.push(&vec![0i16; 4001]));
    }

    #[test]
    fn short_gaps_tolerated() {
        let mut det = PauseDetector::new(200, 4000);
        let mut signal = Vec::new();
        for _ in 0..10 {
            signal.extend(tone::sine(8000, 300.0, 1000, 10000));
            signal.extend(std::iter::repeat_n(0i16, 1000));
        }
        assert!(!det.push(&signal), "inter-word gaps must not trigger");
    }

    #[test]
    fn latches_until_reset() {
        let mut det = PauseDetector::new(200, 100);
        det.push(&speech_then_silence());
        assert!(det.push(&tone::sine(8000, 300.0, 100, 10000)));
        det.reset();
        assert!(!det.push(&tone::sine(8000, 300.0, 100, 10000)));
    }

    #[test]
    fn compression_shortens_long_pauses_only() {
        let mut s = tone::sine(8000, 300.0, 800, 10000);
        s.extend(std::iter::repeat_n(0i16, 8000)); // 1 s pause
        s.extend(tone::sine(8000, 300.0, 800, 10000));
        let out = compress_pauses(&s, 200, 1600); // keep 200 ms
        assert!(out.len() < s.len());
        // Speech content preserved: total retained = 800 + 1600 + 800
        // plus the near-zero sine-edge samples that fall under threshold.
        assert!((out.len() as i64 - 3200).abs() < 200, "len {}", out.len());
    }

    #[test]
    fn compression_leaves_short_pauses_alone() {
        let mut s = tone::sine(8000, 300.0, 800, 10000);
        s.extend(std::iter::repeat_n(0i16, 100));
        s.extend(tone::sine(8000, 300.0, 800, 10000));
        let out = compress_pauses(&s, 200, 1600);
        assert_eq!(out.len(), s.len());
    }

    #[test]
    fn frame_activity_labels() {
        let mut s = vec![0i16; 800];
        s.extend(tone::sine(8000, 300.0, 800, 10000));
        let act = frame_activity(&s, 800, 500.0);
        assert_eq!(act, vec![false, true]);
    }
}
