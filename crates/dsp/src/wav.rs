//! Minimal RIFF/WAVE reading and writing.
//!
//! The server's sound catalogues can load and save standard `.wav` files
//! (PCM-16, PCM-8 and µ-law formats), so recorded messages are usable by
//! other tools. Only canonical, uncompressed chunk layouts are produced;
//! the reader tolerates extra chunks.

use crate::convert::PcmEncoding;

/// A decoded WAVE file.
#[derive(Debug, Clone, PartialEq)]
pub struct WavFile {
    /// Sample rate, Hz.
    pub sample_rate: u32,
    /// Channel count.
    pub channels: u16,
    /// Interleaved linear samples.
    pub samples: Vec<i16>,
}

/// Errors from WAVE parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WavError {
    /// Missing or malformed RIFF/WAVE header.
    NotWave,
    /// The file ends mid-chunk.
    Truncated,
    /// The format chunk declares an unsupported codec.
    UnsupportedFormat(u16),
    /// No `fmt ` or no `data` chunk was found.
    MissingChunk(&'static str),
}

impl std::fmt::Display for WavError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WavError::NotWave => write!(f, "not a RIFF/WAVE file"),
            WavError::Truncated => write!(f, "file truncated mid-chunk"),
            WavError::UnsupportedFormat(tag) => write!(f, "unsupported WAVE format {tag}"),
            WavError::MissingChunk(name) => write!(f, "missing {name} chunk"),
        }
    }
}

impl std::error::Error for WavError {}

const FORMAT_PCM: u16 = 1;
const FORMAT_MULAW: u16 = 7;

fn rd_u32(b: &[u8], off: usize) -> Result<u32, WavError> {
    b.get(off..off + 4)
        .map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
        .ok_or(WavError::Truncated)
}

fn rd_u16(b: &[u8], off: usize) -> Result<u16, WavError> {
    b.get(off..off + 2).map(|s| u16::from_le_bytes([s[0], s[1]])).ok_or(WavError::Truncated)
}

/// Parses a WAVE file from memory.
pub fn decode(bytes: &[u8]) -> Result<WavFile, WavError> {
    if bytes.len() < 12 || &bytes[0..4] != b"RIFF" || &bytes[8..12] != b"WAVE" {
        return Err(WavError::NotWave);
    }
    let mut pos = 12usize;
    let mut fmt: Option<(u16, u16, u32, u16)> = None; // (tag, channels, rate, bits)
    let mut data: Option<&[u8]> = None;
    while pos + 8 <= bytes.len() {
        let id = &bytes[pos..pos + 4];
        let size = rd_u32(bytes, pos + 4)? as usize;
        let body_start = pos + 8;
        let body_end = body_start.checked_add(size).ok_or(WavError::Truncated)?;
        if body_end > bytes.len() {
            return Err(WavError::Truncated);
        }
        match id {
            b"fmt " => {
                let tag = rd_u16(bytes, body_start)?;
                let channels = rd_u16(bytes, body_start + 2)?;
                let rate = rd_u32(bytes, body_start + 4)?;
                let bits = rd_u16(bytes, body_start + 14)?;
                fmt = Some((tag, channels, rate, bits));
            }
            b"data" => data = Some(&bytes[body_start..body_end]),
            _ => {}
        }
        // Chunks are word-aligned.
        pos = body_end + (size & 1);
    }
    let (tag, channels, rate, bits) = fmt.ok_or(WavError::MissingChunk("fmt "))?;
    let data = data.ok_or(WavError::MissingChunk("data"))?;
    let samples = match (tag, bits) {
        (FORMAT_PCM, 16) => crate::convert::decode_to_pcm16(PcmEncoding::Pcm16, data),
        (FORMAT_PCM, 8) => crate::convert::decode_to_pcm16(PcmEncoding::Pcm8, data),
        (FORMAT_MULAW, 8) => crate::convert::decode_to_pcm16(PcmEncoding::ULaw, data),
        (t, _) => return Err(WavError::UnsupportedFormat(t)),
    };
    Ok(WavFile { sample_rate: rate, channels: channels.max(1), samples })
}

/// Encodes interleaved samples as a canonical PCM-16 WAVE file.
pub fn encode_pcm16(sample_rate: u32, channels: u16, samples: &[i16]) -> Vec<u8> {
    encode(sample_rate, channels, samples, PcmEncoding::Pcm16)
}

/// Encodes interleaved samples as a WAVE file in the given encoding
/// (PCM-16, PCM-8 or µ-law; other encodings fall back to PCM-16).
pub fn encode(
    sample_rate: u32,
    channels: u16,
    samples: &[i16],
    encoding: PcmEncoding,
) -> Vec<u8> {
    let (tag, bits, payload) = match encoding {
        PcmEncoding::Pcm8 => {
            (FORMAT_PCM, 8u16, crate::convert::encode_from_pcm16(PcmEncoding::Pcm8, samples))
        }
        PcmEncoding::ULaw => {
            (FORMAT_MULAW, 8, crate::convert::encode_from_pcm16(PcmEncoding::ULaw, samples))
        }
        _ => (FORMAT_PCM, 16, crate::convert::encode_from_pcm16(PcmEncoding::Pcm16, samples)),
    };
    let block_align = channels * (bits / 8);
    let byte_rate = sample_rate * block_align as u32;
    let mut out = Vec::with_capacity(44 + payload.len()); // rt-ok: container encode runs at save/finalize time, once per sound
    out.extend_from_slice(b"RIFF");
    out.extend_from_slice(&((36 + payload.len()) as u32).to_le_bytes());
    out.extend_from_slice(b"WAVE");
    out.extend_from_slice(b"fmt ");
    out.extend_from_slice(&16u32.to_le_bytes());
    out.extend_from_slice(&tag.to_le_bytes());
    out.extend_from_slice(&channels.to_le_bytes());
    out.extend_from_slice(&sample_rate.to_le_bytes());
    out.extend_from_slice(&byte_rate.to_le_bytes());
    out.extend_from_slice(&block_align.to_le_bytes());
    out.extend_from_slice(&bits.to_le_bytes());
    out.extend_from_slice(b"data");
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    if payload.len() & 1 == 1 {
        out.push(0); // rt-ok: single pad byte within reserved capacity
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tone;

    #[test]
    fn pcm16_roundtrip_exact() {
        let s = tone::sine(8000, 440.0, 801, 12000);
        let bytes = encode_pcm16(8000, 1, &s);
        let back = decode(&bytes).unwrap();
        assert_eq!(back.sample_rate, 8000);
        assert_eq!(back.channels, 1);
        assert_eq!(back.samples, s);
    }

    #[test]
    fn ulaw_roundtrip_close() {
        let s = tone::sine(8000, 440.0, 800, 12000);
        let bytes = encode(8000, 1, &s, PcmEncoding::ULaw);
        let back = decode(&bytes).unwrap();
        let snr = crate::analysis::snr_db(&s, &back.samples);
        assert!(snr > 30.0, "{snr}");
    }

    #[test]
    fn stereo_header() {
        let s = vec![1i16, 2, 3, 4];
        let bytes = encode_pcm16(44100, 2, &s);
        let back = decode(&bytes).unwrap();
        assert_eq!(back.channels, 2);
        assert_eq!(back.sample_rate, 44100);
        assert_eq!(back.samples, s);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(decode(b"not a wave"), Err(WavError::NotWave));
        assert_eq!(decode(b""), Err(WavError::NotWave));
    }

    #[test]
    fn rejects_truncated_data_chunk() {
        let s = tone::sine(8000, 440.0, 100, 12000);
        let mut bytes = encode_pcm16(8000, 1, &s);
        bytes.truncate(bytes.len() - 50);
        assert_eq!(decode(&bytes), Err(WavError::Truncated));
    }

    #[test]
    fn skips_unknown_chunks() {
        let s = vec![5i16, -5];
        let mut bytes = encode_pcm16(8000, 1, &s);
        // Splice a LIST chunk between fmt and data (offset 36 is the
        // start of "data" in the canonical layout).
        let mut spliced = bytes[..36].to_vec();
        spliced.extend_from_slice(b"LIST");
        spliced.extend_from_slice(&4u32.to_le_bytes());
        spliced.extend_from_slice(b"INFO");
        spliced.extend_from_slice(&bytes.split_off(36));
        // Fix the RIFF size.
        let riff_size = (spliced.len() - 8) as u32;
        spliced[4..8].copy_from_slice(&riff_size.to_le_bytes());
        let back = decode(&spliced).unwrap();
        assert_eq!(back.samples, s);
    }
}
