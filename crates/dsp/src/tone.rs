//! Tone and telephony signal generation.
//!
//! Generates the sounds a workstation audio system needs synthetically:
//! test tones, the "beep" of an answering machine, and North American
//! call-progress tones (dial tone, ringback, busy) that the PSTN simulator
//! plays in-band.

use std::f64::consts::TAU;

/// Generates `len` samples of a sine at `freq` Hz, `rate` samples/s, with
/// peak `amplitude`.
pub fn sine(rate: u32, freq: f64, len: usize, amplitude: i16) -> Vec<i16> {
    let mut out = Vec::with_capacity(len);
    let step = TAU * freq / rate as f64;
    for n in 0..len {
        out.push((amplitude as f64 * (step * n as f64).sin()) as i16);
    }
    out
}

/// Generates the sum of two sines (used by every call-progress tone and by
/// DTMF), clamped to `i16`.
pub fn dual_tone(rate: u32, f1: f64, f2: f64, len: usize, amplitude: i16) -> Vec<i16> {
    let s1 = TAU * f1 / rate as f64;
    let s2 = TAU * f2 / rate as f64;
    let a = amplitude as f64 / 2.0;
    (0..len)
        .map(|n| {
            let t = n as f64;
            ((s1 * t).sin() * a + (s2 * t).sin() * a) as i16
        })
        .collect() // rt-ok: tone table built once at digit/op start
}

/// Generates a square wave.
pub fn square(rate: u32, freq: f64, len: usize, amplitude: i16) -> Vec<i16> {
    let period = rate as f64 / freq;
    (0..len)
        .map(|n| {
            let phase = (n as f64 % period) / period;
            if phase < 0.5 {
                amplitude
            } else {
                -amplitude
            }
        })
        .collect()
}

/// Generates `len` samples of silence.
pub fn silence(len: usize) -> Vec<i16> {
    vec![0; len]
}

/// Applies a linear attack/release ramp of `ramp` samples to both ends,
/// removing clicks at tone boundaries.
pub fn apply_ramp(samples: &mut [i16], ramp: usize) {
    let n = samples.len();
    let ramp = ramp.min(n / 2);
    for i in 0..ramp {
        let g = i as f64 / ramp as f64;
        samples[i] = (samples[i] as f64 * g) as i16;
        samples[n - 1 - i] = (samples[n - 1 - i] as f64 * g) as i16;
    }
}

/// North American call-progress tones (frequencies per Bell System
/// precise-tone plan).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallProgressTone {
    /// 350 + 440 Hz continuous.
    Dial,
    /// 440 + 480 Hz, 2 s on / 4 s off.
    Ringback,
    /// 480 + 620 Hz, 0.5 s on / 0.5 s off.
    Busy,
    /// 480 + 620 Hz, 0.25 s on / 0.25 s off.
    Reorder,
}

impl CallProgressTone {
    /// The tone's frequency pair.
    pub fn freqs(self) -> (f64, f64) {
        match self {
            CallProgressTone::Dial => (350.0, 440.0),
            CallProgressTone::Ringback => (440.0, 480.0),
            CallProgressTone::Busy | CallProgressTone::Reorder => (480.0, 620.0),
        }
    }

    /// On/off cadence in milliseconds (`None` = continuous).
    pub fn cadence_ms(self) -> Option<(u32, u32)> {
        match self {
            CallProgressTone::Dial => None,
            CallProgressTone::Ringback => Some((2000, 4000)),
            CallProgressTone::Busy => Some((500, 500)),
            CallProgressTone::Reorder => Some((250, 250)),
        }
    }

    /// Produces the tone's sample at absolute stream position `pos`,
    /// honouring the cadence. Deterministic in `pos`, so the generator is
    /// stateless and resumable.
    pub fn sample_at(self, rate: u32, pos: u64, amplitude: i16) -> i16 {
        if let Some((on_ms, off_ms)) = self.cadence_ms() {
            let on = on_ms as u64 * rate as u64 / 1000;
            let off = off_ms as u64 * rate as u64 / 1000;
            if pos % (on + off) >= on {
                return 0;
            }
        }
        let (f1, f2) = self.freqs();
        let t = pos as f64;
        let s1 = TAU * f1 / rate as f64;
        let s2 = TAU * f2 / rate as f64;
        let a = amplitude as f64 / 2.0;
        ((s1 * t).sin() * a + (s2 * t).sin() * a) as i16
    }

    /// Fills `out` with the tone starting at stream position `pos`.
    pub fn fill(self, rate: u32, pos: u64, amplitude: i16, out: &mut [i16]) {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.sample_at(rate, pos + i as u64, amplitude);
        }
    }
}

/// The standard answering-machine/alert beep: 1 kHz for 250 ms with click
/// suppression.
pub fn beep(rate: u32) -> Vec<i16> {
    let mut s = sine(rate, 1000.0, (rate / 4) as usize, 14000);
    apply_ramp(&mut s, (rate / 100) as usize);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    #[test]
    fn sine_frequency_is_correct() {
        let s = sine(8000, 440.0, 8000, 16000);
        let e_in = analysis::goertzel_power(&s, 8000, 440.0);
        let e_out = analysis::goertzel_power(&s, 8000, 880.0);
        assert!(e_in > e_out * 100.0, "in-band {e_in}, out-of-band {e_out}");
    }

    #[test]
    fn dual_tone_has_both_components() {
        let s = dual_tone(8000, 350.0, 440.0, 8000, 16000);
        let p1 = analysis::goertzel_power(&s, 8000, 350.0);
        let p2 = analysis::goertzel_power(&s, 8000, 440.0);
        let p3 = analysis::goertzel_power(&s, 8000, 1000.0);
        assert!(p1 > p3 * 50.0);
        assert!(p2 > p3 * 50.0);
    }

    #[test]
    fn square_wave_alternates() {
        let s = square(8000, 1000.0, 16, 1000);
        assert_eq!(&s[..8], &[1000, 1000, 1000, 1000, -1000, -1000, -1000, -1000]);
    }

    #[test]
    fn ramp_zeroes_endpoints() {
        let mut s = vec![10000i16; 100];
        apply_ramp(&mut s, 10);
        assert_eq!(s[0], 0);
        assert_eq!(s[99], 0);
        assert_eq!(s[50], 10000);
    }

    #[test]
    fn ringback_cadence() {
        let t = CallProgressTone::Ringback;
        // Within the first 2 s: tone present.
        let on: Vec<i16> = (0..800).map(|i| t.sample_at(8000, i, 16000)).collect();
        assert!(analysis::rms(&on) > 1000.0);
        // Between 2 s and 6 s: silence.
        let off: Vec<i16> =
            (20000..24000u64).map(|i| t.sample_at(8000, i, 16000)).collect();
        assert_eq!(analysis::rms(&off), 0.0);
    }

    #[test]
    fn dial_tone_continuous() {
        let t = CallProgressTone::Dial;
        for start in [0u64, 50_000, 1_000_000] {
            let s: Vec<i16> = (start..start + 800).map(|i| t.sample_at(8000, i, 16000)).collect();
            assert!(analysis::rms(&s) > 1000.0, "silent at {start}");
        }
    }

    #[test]
    fn fill_matches_sample_at() {
        let t = CallProgressTone::Busy;
        let mut buf = vec![0i16; 128];
        t.fill(8000, 777, 12000, &mut buf);
        for (i, &v) in buf.iter().enumerate() {
            assert_eq!(v, t.sample_at(8000, 777 + i as u64, 12000));
        }
    }

    #[test]
    fn beep_is_bounded_and_click_free() {
        let b = beep(8000);
        assert_eq!(b.len(), 2000);
        assert_eq!(b[0], 0);
        assert!(analysis::rms(&b[500..1500]) > 5000.0);
    }
}
