//! IMA/DVI ADPCM at 4 bits per sample.
//!
//! Adaptive Delta Pulse Code Modulation "can reduce audio data rates by
//! about one half" relative to µ-law (paper §5.9 footnote): 4 bits per
//! sample instead of 8. The codec is stateful — a predictor and a step
//! index adapt per sample — so streams are processed through
//! [`Encoder`]/[`Decoder`] objects that may be fed incrementally.

/// IMA step-size table (89 entries).
const STEP_TABLE: [i32; 89] = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, 45, 50, 55, 60,
    66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190, 209, 230, 253, 279, 307, 337, 371,
    408, 449, 494, 544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707,
    1878, 2066, 2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132,
    7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623,
    27086, 29794, 32767,
];

/// Index adaptation per 4-bit code.
const INDEX_TABLE: [i32; 16] = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8];

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct State {
    predictor: i32,
    index: i32,
}

impl State {
    fn encode_sample(&mut self, sample: i16) -> u8 {
        let step = STEP_TABLE[self.index as usize];
        let mut diff = sample as i32 - self.predictor;
        let mut code: u8 = 0;
        if diff < 0 {
            code = 8;
            diff = -diff;
        }
        let mut temp = step;
        if diff >= temp {
            code |= 4;
            diff -= temp;
        }
        temp >>= 1;
        if diff >= temp {
            code |= 2;
            diff -= temp;
        }
        temp >>= 1;
        if diff >= temp {
            code |= 1;
        }
        self.decode_sample(code);
        code
    }

    fn decode_sample(&mut self, code: u8) -> i16 {
        let step = STEP_TABLE[self.index as usize];
        let mut diff = step >> 3;
        if code & 4 != 0 {
            diff += step;
        }
        if code & 2 != 0 {
            diff += step >> 1;
        }
        if code & 1 != 0 {
            diff += step >> 2;
        }
        if code & 8 != 0 {
            self.predictor -= diff;
        } else {
            self.predictor += diff;
        }
        self.predictor = self.predictor.clamp(i16::MIN as i32, i16::MAX as i32);
        self.index = (self.index + INDEX_TABLE[code as usize]).clamp(0, 88);
        self.predictor as i16
    }
}

/// Streaming IMA ADPCM encoder; two samples pack into each output byte
/// (first sample in the low nibble).
#[derive(Debug, Clone, Default)]
pub struct Encoder {
    state: State,
    pending: Option<u8>,
}

impl Encoder {
    /// Creates an encoder in the initial (zero) state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encodes samples, appending packed bytes to `out`.
    ///
    /// An odd trailing sample is held until the next call (or
    /// [`Encoder::finish`]).
    pub fn encode(&mut self, pcm: &[i16], out: &mut Vec<u8>) {
        for &s in pcm {
            let code = self.state.encode_sample(s);
            match self.pending.take() {
                None => self.pending = Some(code),
                Some(low) => out.push(low | (code << 4)), // rt-ok: appends into a caller-reserved buffer
            }
        }
    }

    /// Flushes a held odd sample, padding the high nibble with zero.
    pub fn finish(&mut self, out: &mut Vec<u8>) {
        if let Some(low) = self.pending.take() {
            out.push(low); // rt-ok: at most one byte into a caller-reserved buffer
        }
    }
}

/// Streaming IMA ADPCM decoder matching [`Encoder`].
#[derive(Debug, Clone, Default)]
pub struct Decoder {
    state: State,
}

impl Decoder {
    /// Creates a decoder in the initial (zero) state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decodes packed bytes, appending two samples per byte to `out`.
    pub fn decode(&mut self, data: &[u8], out: &mut Vec<i16>) {
        for &b in data {
            out.push(self.state.decode_sample(b & 0x0F)); // rt-ok: appends into a caller-reserved buffer
            out.push(self.state.decode_sample(b >> 4)); // rt-ok: appends into a caller-reserved buffer
        }
    }
}

/// One-shot convenience: encodes a whole buffer.
pub fn encode_slice(pcm: &[i16]) -> Vec<u8> {
    let mut enc = Encoder::new();
    let mut out = Vec::with_capacity(pcm.len().div_ceil(2));
    enc.encode(pcm, &mut out);
    enc.finish(&mut out);
    out
}

/// One-shot convenience: decodes a whole buffer.
pub fn decode_slice(data: &[u8]) -> Vec<i16> {
    let mut dec = Decoder::new();
    let mut out = Vec::with_capacity(data.len() * 2);
    dec.decode(data, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use crate::tone;

    #[test]
    fn halves_data_rate() {
        let pcm = vec![0i16; 8000];
        let enc = encode_slice(&pcm);
        assert_eq!(enc.len(), 4000);
    }

    #[test]
    fn silence_stays_quiet() {
        let pcm = vec![0i16; 1000];
        let dec = decode_slice(&encode_slice(&pcm));
        let peak = dec.iter().map(|s| s.unsigned_abs()).max().unwrap();
        assert!(peak < 64, "silence decoded with peak {peak}");
    }

    #[test]
    fn speech_band_tone_survives_with_good_snr() {
        // A 440 Hz tone at 8 kHz should round-trip with > 20 dB SNR once
        // the adaptive step converges; skip the first 100 samples.
        let pcm = tone::sine(8000, 440.0, 8000, 12000);
        let dec = decode_slice(&encode_slice(&pcm));
        assert_eq!(dec.len(), pcm.len());
        let snr = analysis::snr_db(&pcm[100..], &dec[100..]);
        assert!(snr > 20.0, "SNR only {snr:.1} dB");
    }

    #[test]
    fn streaming_equals_one_shot() {
        let pcm = tone::sine(8000, 300.0, 2001, 8000);
        let one_shot = encode_slice(&pcm);
        let mut enc = Encoder::new();
        let mut streamed = Vec::new();
        for chunk in pcm.chunks(7) {
            enc.encode(chunk, &mut streamed);
        }
        enc.finish(&mut streamed);
        assert_eq!(one_shot, streamed);
    }

    #[test]
    fn decoder_tracks_encoder_state() {
        let pcm = tone::sine(8000, 1000.0, 4000, 20000);
        let enc = encode_slice(&pcm);
        let mut dec = Decoder::new();
        let mut out = Vec::new();
        for chunk in enc.chunks(13) {
            dec.decode(chunk, &mut out);
        }
        assert_eq!(out, decode_slice(&enc));
    }

    #[test]
    fn step_response_settles() {
        // A DC step: the decoder output must converge to the step level.
        let mut pcm = vec![0i16; 64];
        pcm.extend(std::iter::repeat_n(12000i16, 512));
        let dec = decode_slice(&encode_slice(&pcm));
        let tail = &dec[dec.len() - 32..];
        for &s in tail {
            assert!((s as i32 - 12000).abs() < 1500, "did not settle: {s}");
        }
    }
}
