//! Signal analysis helpers: RMS, peak, Goertzel tone power, SNR.

/// Root-mean-square amplitude of a sample block.
pub fn rms(samples: &[i16]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let sum: f64 = samples.iter().map(|&s| (s as f64) * (s as f64)).sum();
    (sum / samples.len() as f64).sqrt()
}

/// Peak absolute amplitude.
pub fn peak(samples: &[i16]) -> i16 {
    samples.iter().map(|s| s.unsigned_abs()).max().unwrap_or(0).min(i16::MAX as u16) as i16
}

/// Power at a single frequency via the Goertzel algorithm, normalised by
/// block length so different-sized blocks compare.
pub fn goertzel_power(samples: &[i16], rate: u32, freq: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let omega = 2.0 * std::f64::consts::PI * freq / rate as f64;
    let coeff = 2.0 * omega.cos();
    let mut s_prev = 0.0f64;
    let mut s_prev2 = 0.0f64;
    for &x in samples {
        let s = x as f64 + coeff * s_prev - s_prev2;
        s_prev2 = s_prev;
        s_prev = s;
    }
    let power = s_prev2 * s_prev2 + s_prev * s_prev - coeff * s_prev * s_prev2;
    power / (samples.len() as f64 * samples.len() as f64 / 4.0)
}

/// Signal-to-noise ratio in dB between a reference and a degraded copy of
/// equal length.
pub fn snr_db(reference: &[i16], degraded: &[i16]) -> f64 {
    let n = reference.len().min(degraded.len());
    if n == 0 {
        return 0.0;
    }
    let mut sig = 0.0f64;
    let mut noise = 0.0f64;
    for i in 0..n {
        let r = reference[i] as f64;
        let d = degraded[i] as f64;
        sig += r * r;
        noise += (r - d) * (r - d);
    }
    if noise == 0.0 {
        return f64::INFINITY;
    }
    10.0 * (sig / noise).log10()
}

/// Counts zero crossings, a cheap pitch/voicing feature used by the
/// recognizer substrate.
pub fn zero_crossings(samples: &[i16]) -> usize {
    samples.windows(2).filter(|w| (w[0] >= 0) != (w[1] >= 0)).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tone;

    #[test]
    fn rms_of_constant() {
        let s = vec![1000i16; 64];
        assert!((rms(&s) - 1000.0).abs() < 1e-9);
        assert_eq!(rms(&[]), 0.0);
    }

    #[test]
    fn peak_handles_min() {
        assert_eq!(peak(&[i16::MIN, 5]), i16::MAX);
        assert_eq!(peak(&[-7, 5]), 7);
        assert_eq!(peak(&[]), 0);
    }

    #[test]
    fn goertzel_selective() {
        let s = tone::sine(8000, 697.0, 800, 16000);
        let hit = goertzel_power(&s, 8000, 697.0);
        let miss = goertzel_power(&s, 8000, 941.0);
        assert!(hit > miss * 100.0, "hit {hit} miss {miss}");
    }

    #[test]
    fn snr_perfect_copy_is_infinite() {
        let s = tone::sine(8000, 440.0, 100, 10000);
        assert!(snr_db(&s, &s).is_infinite());
    }

    #[test]
    fn snr_detects_noise() {
        let s = tone::sine(8000, 440.0, 1000, 10000);
        let mut noisy = s.clone();
        for (i, v) in noisy.iter_mut().enumerate() {
            *v = v.saturating_add(if i % 2 == 0 { 100 } else { -100 });
        }
        let db = snr_db(&s, &noisy);
        assert!(db > 25.0 && db < 50.0, "snr {db}");
    }

    #[test]
    fn zero_crossings_of_square() {
        let s = tone::square(8000, 1000.0, 80, 1000);
        // 1 kHz at 8 kHz: a crossing every 4 samples, ~20 over 80 samples.
        let z = zero_crossings(&s);
        assert!((19..=21).contains(&z), "{z}");
    }
}
