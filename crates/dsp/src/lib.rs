//! Audio signal-processing substrate for the desktop-audio system.
//!
//! Everything the server needs to manipulate telephone- through CD-quality
//! audio in software, with no special hardware (paper §1.1: "more and more
//! audio processing can be implemented on the workstation itself"):
//!
//! - G.711 µ-law and A-law companding ([`mulaw`], [`alaw`]);
//! - IMA/DVI ADPCM at 4 bits per sample ([`adpcm`]);
//! - encoding-independent conversion through 16-bit linear PCM
//!   ([`convert`]);
//! - stream mixing and gain ([`mix`], [`gain`]);
//! - sample-rate conversion ([`resample`]);
//! - tone and telephony signal generation ([`tone`]);
//! - DTMF generation and Goertzel detection ([`dtmf`]);
//! - stream effects for the DSP device class ([`effects`]);
//! - automatic gain control ([`agc`]);
//! - silence/pause detection and pause compression ([`silence`]);
//! - signal analysis helpers ([`analysis`]);
//! - a minimal RIFF/WAVE reader and writer ([`wav`]);
//! - leaf-call timing for the server's telemetry ([`meter`]).
//!
//! The interchange representation throughout is `i16` linear PCM sample
//! frames; encoders and decoders translate to and from the wire encodings.

pub mod adpcm;
pub mod agc;
pub mod alaw;
pub mod analysis;
pub mod convert;
pub mod dtmf;
pub mod effects;
pub mod gain;
pub mod meter;
pub mod mix;
pub mod mulaw;
pub mod resample;
pub mod silence;
pub mod tone;
pub mod wav;

pub use convert::{decode_to_pcm16, encode_from_pcm16, Codec, PcmEncoding};
