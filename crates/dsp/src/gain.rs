//! Gain application.
//!
//! `ChangeGain` is the base command of input and output devices (paper
//! §5.1). Gain is expressed in milli-units: 1000 is unity, 500 is −6 dB,
//! 2000 is +6 dB. Application is saturating.

/// Unity gain in milli-units.
pub const UNITY: u32 = 1000;

/// Applies a milli-unit gain to a buffer in place.
pub fn apply(samples: &mut [i16], gain_milli: u32) {
    if gain_milli == UNITY {
        return;
    }
    let g = gain_milli as i64;
    for s in samples.iter_mut() {
        let v = (*s as i64 * g) / UNITY as i64;
        *s = v.clamp(i16::MIN as i64, i16::MAX as i64) as i16;
    }
}

/// Returns a scaled copy.
pub fn scaled(samples: &[i16], gain_milli: u32) -> Vec<i16> {
    let mut out = samples.to_vec();
    apply(&mut out, gain_milli);
    out
}

/// Converts decibels to milli-unit gain (clamped at +24 dB).
pub fn db_to_milli(db: f64) -> u32 {
    let db = db.min(24.0);
    (10f64.powf(db / 20.0) * UNITY as f64).round() as u32
}

/// Converts milli-unit gain to decibels (`-inf` for zero).
pub fn milli_to_db(gain_milli: u32) -> f64 {
    if gain_milli == 0 {
        return f64::NEG_INFINITY;
    }
    20.0 * (gain_milli as f64 / UNITY as f64).log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unity_is_identity() {
        let orig = vec![1i16, -2, 30000, i16::MIN];
        let mut s = orig.clone();
        apply(&mut s, UNITY);
        assert_eq!(s, orig);
    }

    #[test]
    fn half_gain() {
        let mut s = vec![1000i16, -1000, 1];
        apply(&mut s, 500);
        assert_eq!(s, vec![500, -500, 0]);
    }

    #[test]
    fn boost_saturates() {
        let mut s = vec![20000i16, -20000];
        apply(&mut s, 2000);
        assert_eq!(s, vec![i16::MAX, i16::MIN]);
    }

    #[test]
    fn zero_gain_mutes() {
        let mut s = vec![123i16, -55];
        apply(&mut s, 0);
        assert_eq!(s, vec![0, 0]);
    }

    #[test]
    fn db_conversions() {
        assert_eq!(db_to_milli(0.0), UNITY);
        assert!((db_to_milli(-6.0) as i64 - 501).abs() <= 1);
        assert!((db_to_milli(6.0) as i64 - 1995).abs() <= 2);
        assert!((milli_to_db(UNITY)).abs() < 1e-9);
        assert!(milli_to_db(0) == f64::NEG_INFINITY);
        // Round trip within rounding error.
        for db in [-20.0, -6.0, 0.0, 6.0, 20.0] {
            assert!((milli_to_db(db_to_milli(db)) - db).abs() < 0.05);
        }
    }
}
