//! Encoding-independent conversion.
//!
//! Applications "should be sheltered" from data-representation changes
//! (paper §2); the server converts between sound encodings at players,
//! recorders and typed wires. All conversions pass through 16-bit linear
//! PCM.

use crate::{adpcm, alaw, mulaw};

/// The encodings this substrate can convert, mirroring
/// `da_proto::types::Encoding` without depending on the protocol crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PcmEncoding {
    /// G.711 µ-law, 8 bits.
    ULaw,
    /// G.711 A-law, 8 bits.
    ALaw,
    /// Unsigned 8-bit linear with a 128 bias.
    Pcm8,
    /// Signed 16-bit little-endian linear.
    Pcm16,
    /// IMA ADPCM, 4 bits.
    ImaAdpcm,
}

impl PcmEncoding {
    /// Encoded bytes for `samples` samples.
    pub fn bytes_for_samples(self, samples: usize) -> usize {
        match self {
            PcmEncoding::ULaw | PcmEncoding::ALaw | PcmEncoding::Pcm8 => samples,
            PcmEncoding::Pcm16 => samples * 2,
            PcmEncoding::ImaAdpcm => samples.div_ceil(2),
        }
    }

    /// Samples represented by `bytes` encoded bytes.
    pub fn samples_for_bytes(self, bytes: usize) -> usize {
        match self {
            PcmEncoding::ULaw | PcmEncoding::ALaw | PcmEncoding::Pcm8 => bytes,
            PcmEncoding::Pcm16 => bytes / 2,
            PcmEncoding::ImaAdpcm => bytes * 2,
        }
    }
}

/// Decodes encoded bytes to linear 16-bit samples.
pub fn decode_to_pcm16(encoding: PcmEncoding, data: &[u8]) -> Vec<i16> {
    let mut out = Vec::with_capacity(encoding.samples_for_bytes(data.len())); // rt-ok: sound ingest/finalize helper, runs at op boundaries
    decode_to_pcm16_into(encoding, data, &mut out);
    out
}

/// Decodes encoded bytes, appending linear 16-bit samples to `out`.
/// Allocation-free when `out` has capacity.
pub fn decode_to_pcm16_into(encoding: PcmEncoding, data: &[u8], out: &mut Vec<i16>) {
    match encoding {
        PcmEncoding::ULaw => out.extend(data.iter().map(|&b| mulaw::decode(b))),
        PcmEncoding::ALaw => out.extend(data.iter().map(|&b| alaw::decode(b))),
        PcmEncoding::Pcm8 => {
            out.extend(data.iter().map(|&b| ((b as i16) - 128) << 8));
        }
        PcmEncoding::Pcm16 => out.extend(
            data.chunks_exact(2).map(|c| i16::from_le_bytes([c[0], c[1]])),
        ),
        PcmEncoding::ImaAdpcm => adpcm::Decoder::new().decode(data, out),
    }
}

/// Encodes linear 16-bit samples to encoded bytes.
pub fn encode_from_pcm16(encoding: PcmEncoding, pcm: &[i16]) -> Vec<u8> {
    let mut out = Vec::with_capacity(encoding.bytes_for_samples(pcm.len())); // rt-ok: sound ingest/finalize helper, runs at op boundaries
    encode_from_pcm16_into(encoding, pcm, &mut out);
    out
}

/// Encodes linear 16-bit samples, appending encoded bytes to `out`.
/// Allocation-free when `out` has capacity. ADPCM output rounds any
/// trailing half-byte up, matching [`adpcm::encode_slice`].
pub fn encode_from_pcm16_into(encoding: PcmEncoding, pcm: &[i16], out: &mut Vec<u8>) {
    match encoding {
        PcmEncoding::ULaw => out.extend(pcm.iter().map(|&s| mulaw::encode(s))),
        PcmEncoding::ALaw => out.extend(pcm.iter().map(|&s| alaw::encode(s))),
        PcmEncoding::Pcm8 => out.extend(pcm.iter().map(|&s| ((s >> 8) + 128) as u8)),
        PcmEncoding::Pcm16 => {
            for &s in pcm {
                out.extend_from_slice(&s.to_le_bytes());
            }
        }
        PcmEncoding::ImaAdpcm => {
            let mut enc = adpcm::Encoder::new();
            enc.encode(pcm, out);
            enc.finish(out);
        }
    }
}

/// A stateful transcoder from one encoding to another, safe to feed
/// incrementally (required for ADPCM, whose codec state spans calls).
#[derive(Debug)]
pub struct Codec {
    from: PcmEncoding,
    to: PcmEncoding,
    adpcm_dec: adpcm::Decoder,
    adpcm_enc: adpcm::Encoder,
    /// Held byte when a Pcm16 or ADPCM input block splits mid-sample.
    carry: Vec<u8>,
}

impl Codec {
    /// Creates a transcoder from `from` to `to`.
    pub fn new(from: PcmEncoding, to: PcmEncoding) -> Self {
        Codec {
            from,
            to,
            adpcm_dec: adpcm::Decoder::new(),
            adpcm_enc: adpcm::Encoder::new(),
            carry: Vec::new(),
        }
    }

    /// Transcodes a block of encoded input, returning encoded output.
    pub fn push(&mut self, data: &[u8]) -> Vec<u8> {
        let mut input = std::mem::take(&mut self.carry);
        input.extend_from_slice(data);
        // Hold back a split 16-bit sample.
        if self.from == PcmEncoding::Pcm16 && input.len() % 2 == 1 {
            self.carry.push(input.pop().expect("non-empty"));
        }
        let pcm = match self.from {
            PcmEncoding::ImaAdpcm => {
                let mut out = Vec::with_capacity(input.len() * 2);
                self.adpcm_dec.decode(&input, &mut out);
                out
            }
            other => decode_to_pcm16(other, &input),
        };
        match self.to {
            PcmEncoding::ImaAdpcm => {
                let mut out = Vec::with_capacity(pcm.len().div_ceil(2));
                self.adpcm_enc.encode(&pcm, &mut out);
                out
            }
            other => encode_from_pcm16(other, &pcm),
        }
    }

    /// Flushes any held ADPCM half-byte.
    pub fn finish(&mut self) -> Vec<u8> {
        let mut out = Vec::new();
        if self.to == PcmEncoding::ImaAdpcm {
            self.adpcm_enc.finish(&mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use crate::tone;

    #[test]
    fn pcm16_roundtrip_exact() {
        let pcm: Vec<i16> = (-100..100).map(|i| (i * 327) as i16).collect();
        let bytes = encode_from_pcm16(PcmEncoding::Pcm16, &pcm);
        assert_eq!(decode_to_pcm16(PcmEncoding::Pcm16, &bytes), pcm);
    }

    #[test]
    fn pcm8_roundtrip_within_quantum() {
        let pcm = tone::sine(8000, 500.0, 400, 20000);
        let bytes = encode_from_pcm16(PcmEncoding::Pcm8, &pcm);
        let back = decode_to_pcm16(PcmEncoding::Pcm8, &bytes);
        for (a, b) in pcm.iter().zip(back.iter()) {
            assert!((*a as i32 - *b as i32).abs() <= 256);
        }
    }

    #[test]
    fn size_arithmetic() {
        assert_eq!(PcmEncoding::ULaw.bytes_for_samples(8000), 8000);
        assert_eq!(PcmEncoding::Pcm16.bytes_for_samples(100), 200);
        assert_eq!(PcmEncoding::ImaAdpcm.bytes_for_samples(100), 50);
        assert_eq!(PcmEncoding::ImaAdpcm.bytes_for_samples(101), 51);
        assert_eq!(PcmEncoding::Pcm16.samples_for_bytes(200), 100);
        assert_eq!(PcmEncoding::ImaAdpcm.samples_for_bytes(50), 100);
    }

    #[test]
    fn ulaw_to_pcm16_transcoding_preserves_signal() {
        let pcm = tone::sine(8000, 440.0, 4000, 15000);
        let ulaw = encode_from_pcm16(PcmEncoding::ULaw, &pcm);
        let mut codec = Codec::new(PcmEncoding::ULaw, PcmEncoding::Pcm16);
        let mut out = Vec::new();
        for chunk in ulaw.chunks(33) {
            out.extend(codec.push(chunk));
        }
        out.extend(codec.finish());
        let back = decode_to_pcm16(PcmEncoding::Pcm16, &out);
        assert_eq!(back.len(), pcm.len());
        let snr = analysis::snr_db(&pcm, &back);
        assert!(snr > 30.0, "µ-law SNR only {snr:.1} dB");
    }

    #[test]
    fn split_pcm16_sample_carries_across_pushes() {
        let pcm: Vec<i16> = (0..100).map(|i| (i * 250) as i16).collect();
        let bytes = encode_from_pcm16(PcmEncoding::Pcm16, &pcm);
        let mut codec = Codec::new(PcmEncoding::Pcm16, PcmEncoding::Pcm16);
        let mut out = Vec::new();
        // Push with odd-sized chunks to split samples.
        for chunk in bytes.chunks(3) {
            out.extend(codec.push(chunk));
        }
        out.extend(codec.finish());
        assert_eq!(out, bytes);
    }

    #[test]
    fn adpcm_transcode_stream_matches_one_shot() {
        let pcm = tone::sine(8000, 350.0, 1600, 9000);
        let mut codec = Codec::new(PcmEncoding::Pcm16, PcmEncoding::ImaAdpcm);
        let bytes = encode_from_pcm16(PcmEncoding::Pcm16, &pcm);
        let mut out = Vec::new();
        for chunk in bytes.chunks(16) {
            out.extend(codec.push(chunk));
        }
        out.extend(codec.finish());
        assert_eq!(out, crate::adpcm::encode_slice(&pcm));
    }
}
