//! Leaf-call timing for the DSP substrate.
//!
//! The engine wraps its DSP leaf calls (format conversion, mixing,
//! resampling) with [`DspMeter::timed`]; the accumulated nanoseconds are
//! drained into the server's telemetry histograms once per tick, so the
//! per-call overhead is two `Instant` reads and an add.

use std::time::Instant;

/// Accumulated DSP leaf time for one engine tick, in nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DspMeter {
    /// Encoding/decoding between wire encodings and linear PCM.
    pub convert_ns: u64,
    /// Stream mixing (including DTMF overlay).
    pub mix_ns: u64,
    /// Sample-rate conversion on wires.
    pub resample_ns: u64,
}

impl DspMeter {
    /// Runs `f`, adding its wall time to `slot`.
    pub fn timed<R>(slot: &mut u64, f: impl FnOnce() -> R) -> R {
        let started = Instant::now();
        let r = f();
        *slot += started.elapsed().as_nanos() as u64;
        r
    }

    /// Takes the accumulated values, resetting the meter.
    pub fn take(&mut self) -> DspMeter {
        std::mem::take(self)
    }

    /// Whether nothing was accumulated.
    pub fn is_empty(&self) -> bool {
        *self == DspMeter::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_accumulates_and_take_resets() {
        let mut m = DspMeter::default();
        let v = DspMeter::timed(&mut m.mix_ns, || {
            std::thread::sleep(std::time::Duration::from_micros(200));
            7
        });
        assert_eq!(v, 7);
        assert!(m.mix_ns >= 200_000, "measured {}ns", m.mix_ns);
        assert_eq!(m.convert_ns, 0);
        let taken = m.take();
        assert!(taken.mix_ns >= 200_000);
        assert!(m.is_empty());
    }
}
