//! DTMF (touch-tone) generation and detection.
//!
//! Touch tones are the input medium for telephone-based applications
//! ("dial by name", voice-mail menus — paper §1.2). Generation produces
//! standard dual tones; detection runs a Goertzel filter bank over the
//! eight DTMF frequencies with an energy-ratio validity test, since even
//! "touch tone decoding [is] quite error prone" (paper §1.4) and the
//! detector must give prompt, reliable feedback.

use crate::analysis::goertzel_power;
use crate::tone::dual_tone;

/// The four DTMF row frequencies, Hz.
pub const ROWS: [f64; 4] = [697.0, 770.0, 852.0, 941.0];
/// The four DTMF column frequencies, Hz.
pub const COLS: [f64; 4] = [1209.0, 1336.0, 1477.0, 1633.0];

/// Key layout indexed by `[row][col]`.
pub const KEYS: [[u8; 4]; 4] = [
    [b'1', b'2', b'3', b'A'],
    [b'4', b'5', b'6', b'B'],
    [b'7', b'8', b'9', b'C'],
    [b'*', b'0', b'#', b'D'],
];

/// Returns the (row, col) frequencies for a DTMF digit, or `None` if the
/// character is not a DTMF key.
pub fn freqs_for(digit: u8) -> Option<(f64, f64)> {
    for (r, row) in KEYS.iter().enumerate() {
        for (c, &key) in row.iter().enumerate() {
            if key == digit.to_ascii_uppercase() {
                return Some((ROWS[r], COLS[c]));
            }
        }
    }
    None
}

/// Generates one DTMF digit: `on_ms` of tone followed by `off_ms` of
/// silence.
pub fn digit(rate: u32, key: u8, on_ms: u32, off_ms: u32, amplitude: i16) -> Option<Vec<i16>> {
    let (f1, f2) = freqs_for(key)?;
    let on = (rate as u64 * on_ms as u64 / 1000) as usize;
    let off = (rate as u64 * off_ms as u64 / 1000) as usize;
    let mut s = dual_tone(rate, f1, f2, on, amplitude);
    crate::tone::apply_ramp(&mut s, (rate / 200) as usize);
    s.extend(std::iter::repeat_n(0, off));
    Some(s)
}

/// Generates a digit string with standard 80 ms on / 80 ms off timing.
pub fn dial_string(rate: u32, digits: &str, amplitude: i16) -> Vec<i16> {
    let mut out = Vec::new();
    for ch in digits.bytes() {
        if let Some(d) = digit(rate, ch, 80, 80, amplitude) {
            out.extend(d);
        }
    }
    out
}

/// Streaming DTMF detector.
///
/// Feed sample blocks of any size; the detector analyses fixed windows
/// (~13 ms) internally and reports each new key press exactly once, after
/// it has been stable for two consecutive windows.
#[derive(Debug)]
pub struct Detector {
    rate: u32,
    window: usize,
    buf: Vec<i16>,
    last_window: Option<u8>,
    current: Option<u8>,
}

impl Detector {
    /// Creates a detector for the given sample rate.
    pub fn new(rate: u32) -> Self {
        // 102 samples at 8 kHz is the classic Goertzel DTMF block; scale
        // with rate.
        let window = (rate as usize * 102) / 8000;
        Detector { rate, window, buf: Vec::new(), last_window: None, current: None }
    }

    /// Feeds samples, returning digits whose presses began in this block.
    pub fn push(&mut self, samples: &[i16]) -> Vec<u8> {
        let mut out = Vec::new();
        self.buf.extend_from_slice(samples);
        while self.buf.len() >= self.window {
            let hit = self.analyse(&self.buf[..self.window]);
            self.buf.drain(..self.window);
            // Debounce: a key registers when seen in two consecutive
            // windows; it must release (None window) before re-triggering.
            match (hit, self.last_window) {
                (Some(k), Some(prev)) if k == prev && self.current != Some(k) => {
                    self.current = Some(k);
                    out.push(k); // rt-ok: allocates only when a key registers, a human-timescale event
                }
                (None, None) => self.current = None,
                _ => {}
            }
            self.last_window = hit;
        }
        out
    }

    fn analyse(&self, block: &[i16]) -> Option<u8> {
        let total: f64 = block.iter().map(|&s| (s as f64) * (s as f64)).sum::<f64>()
            / block.len() as f64;
        if total < 1000.0 {
            return None;
        }
        let mut row_p = [0.0f64; 4];
        let mut col_p = [0.0f64; 4];
        for (p, &f) in row_p.iter_mut().zip(ROWS.iter()) {
            *p = goertzel_power(block, self.rate, f);
        }
        for (p, &f) in col_p.iter_mut().zip(COLS.iter()) {
            *p = goertzel_power(block, self.rate, f);
        }
        let (ri, &rbest) = row_p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("non-empty");
        let (ci, &cbest) = col_p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("non-empty");
        // Validity: the winning row and column must dominate their bands.
        let row_rest: f64 =
            row_p.iter().enumerate().filter(|(i, _)| *i != ri).map(|(_, &p)| p).sum();
        let col_rest: f64 =
            col_p.iter().enumerate().filter(|(i, _)| *i != ci).map(|(_, &p)| p).sum();
        if rbest < 4.0 * row_rest.max(1e-12) || cbest < 4.0 * col_rest.max(1e-12) {
            return None;
        }
        // Both tones must carry comparable energy (twist check).
        if rbest > cbest * 16.0 || cbest > rbest * 16.0 {
            return None;
        }
        Some(KEYS[ri][ci])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_key_has_freqs() {
        for row in KEYS {
            for key in row {
                assert!(freqs_for(key).is_some(), "missing {}", key as char);
            }
        }
        assert!(freqs_for(b'x').is_none());
        assert_eq!(freqs_for(b'a'), freqs_for(b'A'));
    }

    #[test]
    fn detects_every_key() {
        for row in KEYS {
            for key in row {
                let mut det = Detector::new(8000);
                let samples = digit(8000, key, 100, 100, 12000).unwrap();
                let got = det.push(&samples);
                assert_eq!(got, vec![key], "key {}", key as char);
            }
        }
    }

    #[test]
    fn detects_sequence_once_each() {
        let mut det = Detector::new(8000);
        let s = dial_string(8000, "555#2", 12000);
        let got = det.push(&s);
        assert_eq!(got, b"555#2".to_vec());
    }

    #[test]
    fn silence_and_speech_like_noise_rejected() {
        let mut det = Detector::new(8000);
        assert!(det.push(&vec![0i16; 4000]).is_empty());
        // Single tone (no column component) must not register.
        let single = crate::tone::sine(8000, 697.0, 2000, 12000);
        assert!(det.push(&single).is_empty());
    }

    #[test]
    fn chunked_feed_equivalent() {
        let s = dial_string(8000, "1234567890*#", 12000);
        let mut det1 = Detector::new(8000);
        let whole = det1.push(&s);
        let mut det2 = Detector::new(8000);
        let mut chunked = Vec::new();
        for chunk in s.chunks(37) {
            chunked.extend(det2.push(chunk));
        }
        assert_eq!(whole, chunked);
        assert_eq!(whole, b"1234567890*#".to_vec());
    }

    #[test]
    fn works_at_other_rates() {
        for rate in [8000u32, 16000, 44100] {
            let mut det = Detector::new(rate);
            let s = digit(rate, b'7', 100, 100, 12000).unwrap();
            assert_eq!(det.push(&s), vec![b'7'], "rate {rate}");
        }
    }
}
