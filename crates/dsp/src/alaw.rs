//! G.711 A-law companding, the European telephone standard.

/// Segment end points for the A-law encoder (13-bit magnitudes).
const SEG_END: [i32; 8] = [0x1F, 0x3F, 0x7F, 0xFF, 0x1FF, 0x3FF, 0x7FF, 0xFFF];

/// Encodes one 16-bit linear sample to A-law.
pub fn encode(sample: i16) -> u8 {
    // Work on the 13 significant bits, per G.711.
    let mut pcm = (sample as i32) >> 3;
    let mask: u8 = if pcm >= 0 {
        0xD5
    } else {
        pcm = -pcm - 1;
        0x55
    };
    match SEG_END.iter().position(|&end| pcm <= end) {
        None => 0x7F ^ mask,
        Some(seg) => {
            let mut aval = (seg as u8) << 4;
            if seg < 2 {
                aval |= ((pcm >> 1) & 0x0F) as u8;
            } else {
                aval |= ((pcm >> seg) & 0x0F) as u8;
            }
            aval ^ mask
        }
    }
}

/// Decodes one A-law byte to 16-bit linear PCM.
pub fn decode(alaw: u8) -> i16 {
    let a = alaw ^ 0x55;
    let mut t = ((a & 0x0F) as i32) << 4;
    let seg = (a & 0x70) >> 4;
    match seg {
        0 => t += 8,
        1 => t += 0x108,
        _ => {
            t += 0x108;
            t <<= seg - 1;
        }
    }
    // Sign bit set means positive in A-law after the 0x55 toggle.
    if a & 0x80 != 0 {
        t as i16
    } else {
        -t as i16
    }
}

/// Encodes a slice of linear samples to A-law.
pub fn encode_slice(pcm: &[i16]) -> Vec<u8> {
    pcm.iter().map(|&s| encode(s)).collect()
}

/// Decodes a slice of A-law bytes to linear samples.
pub fn decode_slice(alaw: &[u8]) -> Vec<i16> {
    alaw.iter().map(|&b| decode(b)).collect()
}

/// The A-law byte representing the smallest positive level (used as
/// silence fill).
pub const SILENCE: u8 = 0xD5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silence_near_zero() {
        assert_eq!(encode(0), SILENCE);
        assert!(decode(SILENCE).abs() <= 64);
    }

    #[test]
    fn roundtrip_error_bounded() {
        for s in (-32000i32..32000).step_by(13) {
            let s = s as i16;
            let r = decode(encode(s)) as i32;
            let err = (r - s as i32).abs();
            let bound = ((s as i32).abs() / 16).max(64) + 64;
            assert!(err <= bound, "sample {s} decoded {r}, err {err}");
        }
    }

    #[test]
    fn decode_monotonic_positive() {
        let mut last = i16::MIN;
        for s in (0i32..32600).step_by(5) {
            let d = decode(encode(s as i16));
            assert!(d >= last, "decode moved backwards at {s}: {d} < {last}");
            last = d;
        }
    }

    #[test]
    fn all_codes_idempotent() {
        for code in 0u8..=255 {
            let lin = decode(code);
            assert_eq!(decode(encode(lin)), lin, "code {code:#x}");
        }
    }

    #[test]
    fn sign_symmetry_close() {
        // A-law is mid-riser: +x and -x may differ by one quantum.
        for s in [500i16, 3000, 12000, 30000] {
            let pos = decode(encode(s)) as i32;
            let neg = decode(encode(-s)) as i32;
            assert!((pos + neg).abs() <= 256, "asymmetric at {s}: {pos} vs {neg}");
        }
    }
}
