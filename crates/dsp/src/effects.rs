//! Stream effects for the DSP device class.
//!
//! The paper leaves the DSP class's commands unspecified (§5.1) and asks
//! that audio support be "extensible to support new devices and signal
//! processing algorithms as they emerge" (§2). Effects here are selected
//! through device controls; each processes an i16 stream in place with
//! state that survives tick boundaries.

use std::collections::VecDeque;

/// A feedback echo: `out = in + feedback · delayed(out)`.
#[derive(Debug, Clone)]
pub struct Echo {
    delay: VecDeque<i16>,
    /// Feedback in milli-units (1000 = unity; values ≥ 1000 are clamped
    /// to 950 to keep the loop stable).
    feedback_milli: u32,
}

impl Echo {
    /// Creates an echo with `delay_frames` of delay and the given
    /// feedback.
    pub fn new(delay_frames: usize, feedback_milli: u32) -> Self {
        Echo {
            delay: VecDeque::from(vec![0i16; delay_frames.max(1)]),
            feedback_milli: feedback_milli.min(950),
        }
    }

    /// Delay length in frames.
    pub fn delay_frames(&self) -> usize {
        self.delay.len()
    }

    /// Processes a block in place.
    pub fn process(&mut self, samples: &mut [i16]) {
        let fb = self.feedback_milli as i64;
        for s in samples.iter_mut() {
            let delayed = self.delay.pop_front().unwrap_or(0) as i64;
            let out = (*s as i64 + delayed * fb / 1000)
                .clamp(i16::MIN as i64, i16::MAX as i64) as i16;
            self.delay.push_back(out);
            *s = out;
        }
    }
}

/// A single-pole low-pass filter (simple tone control).
#[derive(Debug, Clone)]
pub struct LowPass {
    alpha: f64,
    y: f64,
}

impl LowPass {
    /// Creates a low-pass with cutoff `freq` Hz at `rate` samples/s.
    pub fn new(rate: u32, freq: f64) -> Self {
        let dt = 1.0 / rate as f64;
        let rc = 1.0 / (2.0 * std::f64::consts::PI * freq.max(1.0));
        LowPass { alpha: dt / (rc + dt), y: 0.0 }
    }

    /// Processes a block in place.
    pub fn process(&mut self, samples: &mut [i16]) {
        for s in samples.iter_mut() {
            self.y += self.alpha * (*s as f64 - self.y);
            *s = self.y as i16;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use crate::tone;

    #[test]
    fn echo_repeats_an_impulse() {
        let mut e = Echo::new(100, 500);
        let mut block = vec![0i16; 400];
        block[0] = 10_000;
        e.process(&mut block);
        // Echoes at 100, 200, 300 with halving amplitude.
        assert_eq!(block[0], 10_000);
        assert_eq!(block[100], 5_000);
        assert_eq!(block[200], 2_500);
        assert_eq!(block[300], 1_250);
        assert_eq!(block[50], 0);
    }

    #[test]
    fn echo_state_spans_blocks() {
        let mut whole = Echo::new(64, 700);
        let mut a = vec![0i16; 256];
        a[0] = 8000;
        let mut b = a.clone();
        whole.process(&mut a);

        let mut split = Echo::new(64, 700);
        let (first, second) = b.split_at_mut(100);
        split.process(first);
        split.process(second);
        assert_eq!(a, b);
    }

    #[test]
    fn echo_feedback_clamped_for_stability() {
        let mut e = Echo::new(8, 5000);
        assert_eq!(e.feedback_milli, 950, "feedback must be clamped below unity");
        let mut block = vec![1000i16; 8000];
        e.process(&mut block);
        // With feedback below unity and constant input, the loop settles
        // toward input/(1-fb) = 1000/0.05 = 20000 rather than diverging.
        let tail = &block[7000..];
        let mean: i64 = tail.iter().map(|&s| s as i64).sum::<i64>() / tail.len() as i64;
        assert!((15_000..=25_000).contains(&mean), "echo loop unstable: mean {mean}");
    }

    #[test]
    fn lowpass_attenuates_high_frequencies() {
        let mut lp = LowPass::new(8000, 400.0);
        let mut low = tone::sine(8000, 200.0, 4000, 10_000);
        lp.process(&mut low);
        let mut lp2 = LowPass::new(8000, 400.0);
        let mut high = tone::sine(8000, 3000.0, 4000, 10_000);
        lp2.process(&mut high);
        let low_rms = analysis::rms(&low[1000..]);
        let high_rms = analysis::rms(&high[1000..]);
        assert!(low_rms > high_rms * 4.0, "low {low_rms} high {high_rms}");
    }
}
