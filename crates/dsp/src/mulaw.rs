//! G.711 µ-law companding.
//!
//! µ-law maps 14 significant bits of linear PCM onto 8 bits with a
//! logarithmic characteristic, the North American telephone standard and
//! the paper's default encoding (8,000 bytes per second at 8 kHz, §1.1).

/// Bias added before segment search, per G.711.
const BIAS: i32 = 0x84;
/// Input clip level (13 bits of magnitude after bias headroom).
const CLIP: i32 = 32_635;

/// Encodes one 16-bit linear sample to µ-law.
pub fn encode(sample: i16) -> u8 {
    let mut pcm = sample as i32;
    let sign: u8 = if pcm < 0 {
        pcm = -pcm;
        0x80
    } else {
        0
    };
    if pcm > CLIP {
        pcm = CLIP;
    }
    pcm += BIAS;
    // Find the segment (exponent): position of the highest set bit above
    // bit 7.
    let mut seg = 0u8;
    let mut probe = pcm >> 7;
    while probe > 1 && seg < 7 {
        probe >>= 1;
        seg += 1;
    }
    let mantissa = ((pcm >> (seg + 3)) & 0x0F) as u8;
    !(sign | (seg << 4) | mantissa)
}

/// Decodes one µ-law byte to 16-bit linear PCM.
pub fn decode(ulaw: u8) -> i16 {
    let u = !ulaw;
    let sign = u & 0x80;
    let seg = (u >> 4) & 0x07;
    let mantissa = u & 0x0F;
    let magnitude = (((mantissa as i32) << 3) + BIAS) << seg;
    let linear = magnitude - BIAS;
    if sign != 0 {
        -linear as i16
    } else {
        linear as i16
    }
}

/// Encodes a slice of linear samples to µ-law.
pub fn encode_slice(pcm: &[i16]) -> Vec<u8> {
    pcm.iter().map(|&s| encode(s)).collect()
}

/// Decodes a slice of µ-law bytes to linear samples.
pub fn decode_slice(ulaw: &[u8]) -> Vec<i16> {
    ulaw.iter().map(|&b| decode(b)).collect()
}

/// The µ-law byte representing digital silence (linear zero).
pub const SILENCE: u8 = 0xFF;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_silence_byte() {
        assert_eq!(encode(0), SILENCE);
        assert_eq!(decode(SILENCE), 0);
    }

    #[test]
    fn sign_symmetry() {
        for s in [100i16, 1000, 5000, 20000, 32000] {
            let pos = decode(encode(s));
            let neg = decode(encode(-s));
            assert_eq!(pos, -neg, "asymmetric at {s}");
        }
    }

    #[test]
    fn roundtrip_error_is_logarithmically_bounded() {
        // µ-law guarantees a roughly constant *relative* error: the step
        // size in segment k is 2^(k+3), so error <= half the step of the
        // containing segment.
        for s in (-32000i32..32000).step_by(17) {
            let s = s as i16;
            let r = decode(encode(s)) as i32;
            let err = (r - s as i32).abs();
            let bound = ((s as i32).abs() / 16).max(16) + 16;
            assert!(err <= bound, "sample {s} decoded {r}, err {err} > {bound}");
        }
    }

    #[test]
    fn decode_is_monotonic_over_positive_codes() {
        // Increasing linear input must never produce a decode that moves
        // backwards (companding is monotonic).
        let mut last = decode(encode(0));
        for s in (0i32..32600).step_by(7) {
            let d = decode(encode(s as i16));
            assert!(d >= last, "decode moved backwards at {s}");
            last = d;
        }
    }

    #[test]
    fn clipping_saturates() {
        assert_eq!(decode(encode(i16::MAX)), decode(encode(32700)));
        assert_eq!(decode(encode(i16::MIN)), decode(encode(-32700)));
    }

    #[test]
    fn all_256_codes_decode_and_reencode() {
        // Every µ-law code word must survive decode→encode unchanged
        // (codec idempotence on its own code space), except that 0x7F and
        // 0xFF both decode to values encoding to silence-adjacent codes.
        for code in 0u8..=255 {
            let lin = decode(code);
            let re = encode(lin);
            let lin2 = decode(re);
            assert_eq!(lin, lin2, "code {code:#x} not idempotent");
        }
    }

    #[test]
    fn slice_helpers_match_scalar() {
        let pcm: Vec<i16> = (-50..50).map(|i| (i * 300) as i16).collect();
        let enc = encode_slice(&pcm);
        assert_eq!(enc.len(), pcm.len());
        let dec = decode_slice(&enc);
        for (i, (&orig, &got)) in pcm.iter().zip(dec.iter()).enumerate() {
            assert_eq!(got, decode(encode(orig)), "index {i}");
        }
    }
}
