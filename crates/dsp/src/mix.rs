//! Stream mixing.
//!
//! Mixers "take data on multiple inputs, combine the streams and then
//! present the combined data on one or more output ports. The relative
//! combination is determined by a percentage assigned to each input"
//! (paper §5.1). Mixing is saturating: simultaneous loud streams clip
//! rather than wrap.

/// Mixes `src` into `acc` in place with a percentage weight (100 = unity).
pub fn mix_into(acc: &mut [i16], src: &[i16], percent: u8) {
    let p = percent as i32;
    for (a, &s) in acc.iter_mut().zip(src.iter()) {
        let contribution = (s as i32 * p) / 100;
        *a = (*a as i32 + contribution).clamp(i16::MIN as i32, i16::MAX as i32) as i16;
    }
}

/// Mixes many weighted streams into a fresh buffer of length `len`.
pub fn mix_streams(streams: &[(&[i16], u8)], len: usize) -> Vec<i16> {
    let mut acc = vec![0i16; len];
    for (src, pct) in streams {
        mix_into(&mut acc, src, *pct);
    }
    acc
}

/// An N-input accumulating mixer that the server's engine drives one tick
/// at a time.
#[derive(Debug)]
pub struct Mixer {
    gains: Vec<u8>,
    acc: Vec<i32>,
}

impl Mixer {
    /// Creates a mixer with `inputs` inputs, all at 100%.
    pub fn new(inputs: usize) -> Self {
        Mixer { gains: vec![100; inputs], acc: Vec::new() }
    }

    /// Number of inputs.
    pub fn inputs(&self) -> usize {
        self.gains.len()
    }

    /// Sets the mix percentage of one input (paper: the mixer `SetGain`
    /// command). Out-of-range inputs are ignored.
    pub fn set_gain(&mut self, input: usize, percent: u8) {
        if let Some(g) = self.gains.get_mut(input) {
            *g = percent;
        }
    }

    /// Returns the gain of an input.
    pub fn gain(&self, input: usize) -> Option<u8> {
        self.gains.get(input).copied()
    }

    /// Begins a tick of `len` frames.
    pub fn begin(&mut self, len: usize) {
        self.acc.clear();
        self.acc.resize(len, 0);
    }

    /// Feeds one input's samples for the current tick.
    pub fn feed(&mut self, input: usize, samples: &[i16]) {
        let pct = self.gains.get(input).copied().unwrap_or(0) as i32;
        for (a, &s) in self.acc.iter_mut().zip(samples.iter()) {
            *a += s as i32 * pct / 100;
        }
    }

    /// Finishes the tick, returning the saturated mix.
    pub fn take(&mut self) -> Vec<i16> {
        self.acc
            .drain(..)
            .map(|v| v.clamp(i16::MIN as i32, i16::MAX as i32) as i16)
            .collect() // rt-ok: drain-style accessor for stop paths and tests; the tick path uses mix_into
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unity_mix_adds() {
        let mut acc = vec![100i16, -50, 0];
        mix_into(&mut acc, &[1, 2, 3], 100);
        assert_eq!(acc, vec![101, -48, 3]);
    }

    #[test]
    fn percentage_scales() {
        let mut acc = vec![0i16; 4];
        mix_into(&mut acc, &[1000, 1000, 1000, 1000], 50);
        assert_eq!(acc, vec![500; 4]);
    }

    #[test]
    fn saturation_not_wraparound() {
        let mut acc = vec![30000i16, -30000];
        mix_into(&mut acc, &[10000, -10000], 100);
        assert_eq!(acc, vec![i16::MAX, i16::MIN]);
    }

    #[test]
    fn length_mismatch_uses_shorter() {
        let mut acc = vec![0i16; 2];
        mix_into(&mut acc, &[5, 5, 5, 5], 100);
        assert_eq!(acc, vec![5, 5]);
    }

    #[test]
    fn mix_streams_combines_all() {
        let a = vec![100i16; 8];
        let b = vec![-40i16; 8];
        let out = mix_streams(&[(&a, 100), (&b, 50)], 8);
        assert_eq!(out, vec![80i16; 8]);
    }

    #[test]
    fn mixer_object_tick_cycle() {
        let mut m = Mixer::new(2);
        m.set_gain(1, 25);
        m.begin(4);
        m.feed(0, &[1000, 1000, 1000, 1000]);
        m.feed(1, &[400, 400, 400, 400]);
        assert_eq!(m.take(), vec![1100; 4]);
        // Second tick starts clean.
        m.begin(2);
        m.feed(0, &[7, 7]);
        assert_eq!(m.take(), vec![7, 7]);
    }

    #[test]
    fn mixer_accumulates_headroom_before_clipping() {
        // Three inputs at 20000 each would clip pairwise, but the i32
        // accumulator only clips once at the end: 60000 -> 32767.
        let mut m = Mixer::new(3);
        m.begin(1);
        for i in 0..3 {
            m.feed(i, &[20000]);
        }
        assert_eq!(m.take(), vec![i16::MAX]);
    }

    #[test]
    fn unknown_input_is_silent() {
        let mut m = Mixer::new(1);
        m.begin(2);
        m.feed(5, &[1000, 1000]);
        assert_eq!(m.take(), vec![0, 0]);
        assert_eq!(m.gain(5), None);
    }
}
