//! Automatic gain control.
//!
//! Recorder devices may advertise AGC during recording (paper §5.1 device
//! attributes). This is a simple peak-tracking AGC: it estimates the
//! recent envelope and steers gain toward a target level, with fast attack
//! (to catch clipping) and slow release (to avoid pumping).

/// Peak-tracking automatic gain control.
#[derive(Debug, Clone)]
pub struct Agc {
    /// Target envelope level.
    target: f64,
    /// Current applied gain (linear).
    gain: f64,
    /// Envelope estimate.
    envelope: f64,
    /// Per-sample attack coefficient (envelope rise).
    attack: f64,
    /// Per-sample release coefficient (envelope fall).
    release: f64,
    /// Gain bounds.
    min_gain: f64,
    max_gain: f64,
}

impl Agc {
    /// Creates an AGC targeting `target` peak amplitude at `rate`
    /// samples/s.
    pub fn new(rate: u32, target: i16) -> Self {
        // Attack ~5 ms, release ~200 ms.
        let attack = 1.0 - (-1.0 / (0.005 * rate as f64)).exp();
        let release = 1.0 - (-1.0 / (0.200 * rate as f64)).exp();
        Agc {
            target: target as f64,
            gain: 1.0,
            envelope: 0.0,
            attack,
            release,
            min_gain: 0.1,
            max_gain: 8.0,
        }
    }

    /// Current gain (linear).
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// Processes a block in place.
    pub fn process(&mut self, samples: &mut [i16]) {
        for s in samples.iter_mut() {
            let x = (*s as f64).abs();
            let coeff = if x > self.envelope { self.attack } else { self.release };
            self.envelope += coeff * (x - self.envelope);
            // Steer gain so that envelope*gain approaches target; only
            // adapt when there is signal, so silence keeps the last gain.
            if self.envelope > self.target / 100.0 {
                let desired = (self.target / self.envelope).clamp(self.min_gain, self.max_gain);
                self.gain += 0.001 * (desired - self.gain);
            }
            let y = (*s as f64) * self.gain;
            *s = y.clamp(i16::MIN as f64, i16::MAX as f64) as i16;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use crate::tone;

    #[test]
    fn boosts_quiet_signal() {
        let mut agc = Agc::new(8000, 16000);
        let mut s = tone::sine(8000, 440.0, 80000, 1500);
        agc.process(&mut s);
        let tail_rms = analysis::rms(&s[60000..]);
        // A 1500-peak sine has RMS ~1060; AGC should raise it well above.
        assert!(tail_rms > 4000.0, "tail rms {tail_rms}");
    }

    #[test]
    fn attenuates_hot_signal() {
        let mut agc = Agc::new(8000, 8000);
        let mut s = tone::sine(8000, 440.0, 80000, 30000);
        agc.process(&mut s);
        let tail_peak = analysis::peak(&s[60000..]);
        assert!(tail_peak < 16000, "tail peak {tail_peak}");
    }

    #[test]
    fn silence_keeps_gain_steady() {
        let mut agc = Agc::new(8000, 16000);
        let mut sig = tone::sine(8000, 440.0, 40000, 2000);
        agc.process(&mut sig);
        let g_after_signal = agc.gain();
        let mut quiet = vec![0i16; 40000];
        agc.process(&mut quiet);
        assert!((agc.gain() - g_after_signal).abs() < 0.05);
        assert!(quiet.iter().all(|&s| s == 0));
    }

    #[test]
    fn gain_is_bounded() {
        let mut agc = Agc::new(8000, 16000);
        let mut s = vec![1i16; 200000];
        agc.process(&mut s);
        assert!(agc.gain() <= 8.0 + 1e-9);
    }
}
