//! Sample-rate conversion by linear interpolation.
//!
//! The server must route sounds between devices of different rates (an
//! 8 kHz telephone sound to a 44.1 kHz output, or down again). Linear
//! interpolation is adequate for speech; a stateful [`Resampler`] keeps
//! fractional position across tick-sized blocks so streams resample
//! without seams.

/// One-shot resampling of a whole buffer.
pub fn resample(input: &[i16], from_rate: u32, to_rate: u32) -> Vec<i16> {
    let mut r = Resampler::new(from_rate, to_rate);
    let mut out = r.push(input);
    out.extend(r.finish());
    out
}

/// Streaming linear-interpolation resampler.
#[derive(Debug)]
pub struct Resampler {
    from_rate: u32,
    to_rate: u32,
    /// Position in input samples of the next output sample, as a fixed
    /// fraction: `pos = pos_int + pos_frac/to_rate` measured in input
    /// sample units scaled by `to_rate`.
    pos_num: u64,
    /// Input samples consumed so far (origin of `pos_num`).
    consumed: u64,
    /// Last sample of the previous block, for interpolation continuity.
    prev: Option<i16>,
}

impl Resampler {
    /// Creates a resampler from `from_rate` to `to_rate` samples/s.
    pub fn new(from_rate: u32, to_rate: u32) -> Self {
        assert!(from_rate > 0 && to_rate > 0, "rates must be positive");
        Resampler { from_rate, to_rate, pos_num: 0, consumed: 0, prev: None }
    }

    /// Ratio of output to input length, as (numerator, denominator).
    pub fn ratio(&self) -> (u32, u32) {
        (self.to_rate, self.from_rate)
    }

    /// Number of output samples that `input_len` more input samples would
    /// let the resampler produce right now.
    pub fn output_len_for(&self, input_len: usize) -> usize {
        let avail = self.consumed + input_len as u64;
        if avail == 0 {
            return 0;
        }
        // Output k is taken at input position k*from/to; it is producible
        // while position+1 <= available (one-sample lookahead for lerp),
        // except that the final sample is produced in finish().
        let max_pos = avail.saturating_sub(1);
        let k_max = max_pos * self.to_rate as u64 / self.from_rate as u64;
        (k_max + 1).saturating_sub(self.pos_num / self.from_rate as u64) as usize
    }

    /// Feeds a block, producing resampled output.
    pub fn push(&mut self, input: &[i16]) -> Vec<i16> {
        let mut out = Vec::new();
        self.push_into(input, &mut out);
        out
    }

    /// Feeds a block, appending resampled output to `out`. Allocation-free
    /// when `out` has capacity: the interpolation window is addressed
    /// virtually ([prev] + input) rather than materialised.
    pub fn push_into(&mut self, input: &[i16], out: &mut Vec<i16>) {
        if self.from_rate == self.to_rate {
            out.extend_from_slice(input);
            return;
        }
        // The working window is [prev] + input, where prev sits at
        // absolute index consumed-1.
        let base = if self.prev.is_some() { self.consumed - 1 } else { self.consumed };
        let consumed = self.consumed;
        let prev = self.prev;
        let sample_at = |abs: u64| -> f64 {
            if abs < consumed {
                prev.unwrap_or(0) as f64
            } else {
                input[(abs - consumed) as usize] as f64
            }
        };
        let avail_end = self.consumed + input.len() as u64;
        loop { // rt-ok: bounded by the pushed block; breaks when the lerp window drains
            // Absolute input position of the next output sample.
            let k = self.pos_num;
            let int_pos = k / self.to_rate as u64;
            let frac = (k % self.to_rate as u64) as f64 / self.to_rate as f64;
            // Need int_pos and int_pos+1 inside the window for lerp.
            if int_pos + 1 >= avail_end {
                break;
            }
            if int_pos < base {
                // Should not happen: output can never precede the window.
                break;
            }
            let s0 = sample_at(int_pos);
            let s1 = sample_at(int_pos + 1);
            out.push((s0 + (s1 - s0) * frac) as i16); // rt-ok: appends into a caller-reserved buffer
            self.pos_num += self.from_rate as u64;
        }
        self.consumed = avail_end;
        self.prev = input.last().copied().or(self.prev);
    }

    /// Flushes the final sample position (which has no lookahead).
    pub fn finish(&mut self) -> Vec<i16> {
        match self.prev {
            Some(p) if self.from_rate != self.to_rate => {
                let mut out = Vec::new();
                // Emit output positions that fall exactly on or after the
                // last input sample, holding its value.
                while self.pos_num / (self.to_rate as u64) < self.consumed {
                    out.push(p);
                    self.pos_num += self.from_rate as u64;
                }
                self.prev = None;
                out
            }
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use crate::tone;

    #[test]
    fn identity_rate_is_passthrough() {
        let s = tone::sine(8000, 440.0, 100, 10000);
        assert_eq!(resample(&s, 8000, 8000), s);
    }

    #[test]
    fn upsample_doubles_length() {
        let s = tone::sine(8000, 440.0, 4000, 10000);
        let out = resample(&s, 8000, 16000);
        let expect = 8000usize;
        assert!(
            (out.len() as i64 - expect as i64).abs() <= 2,
            "got {} want ~{expect}",
            out.len()
        );
    }

    #[test]
    fn downsample_halves_length() {
        let s = tone::sine(16000, 440.0, 8000, 10000);
        let out = resample(&s, 16000, 8000);
        assert!((out.len() as i64 - 4000).abs() <= 2, "got {}", out.len());
    }

    #[test]
    fn tone_frequency_preserved_through_rate_change() {
        let s = tone::sine(8000, 440.0, 8000, 12000);
        let up = resample(&s, 8000, 44100);
        let p440 = analysis::goertzel_power(&up, 44100, 440.0);
        let p880 = analysis::goertzel_power(&up, 44100, 880.0);
        assert!(p440 > p880 * 50.0, "440Hz {p440}, 880Hz {p880}");
    }

    #[test]
    fn streaming_matches_one_shot() {
        let s = tone::sine(8000, 300.0, 3210, 9000);
        let one = resample(&s, 8000, 11025);
        let mut r = Resampler::new(8000, 11025);
        let mut streamed = Vec::new();
        for chunk in s.chunks(77) {
            streamed.extend(r.push(chunk));
        }
        streamed.extend(r.finish());
        assert_eq!(one, streamed);
    }

    #[test]
    fn non_integer_ratio() {
        let s = tone::sine(44100, 1000.0, 44100, 10000);
        let out = resample(&s, 44100, 8000);
        assert!((out.len() as i64 - 8000).abs() <= 2, "got {}", out.len());
        let p = analysis::goertzel_power(&out, 8000, 1000.0);
        let bg = analysis::goertzel_power(&out, 8000, 2000.0);
        assert!(p > bg * 20.0);
    }

    #[test]
    fn push_into_reuses_buffer() {
        let s = tone::sine(8000, 300.0, 1000, 9000);
        let one = resample(&s, 8000, 11025);
        let mut r = Resampler::new(8000, 11025);
        let mut streamed = Vec::new();
        let mut chunk_out = Vec::new();
        for chunk in s.chunks(64) {
            chunk_out.clear();
            r.push_into(chunk, &mut chunk_out);
            streamed.extend_from_slice(&chunk_out);
        }
        streamed.extend(r.finish());
        assert_eq!(one, streamed);
    }

    #[test]
    fn empty_input() {
        assert!(resample(&[], 8000, 16000).is_empty());
        let mut r = Resampler::new(8000, 16000);
        assert!(r.push(&[]).is_empty());
        assert!(r.finish().is_empty());
    }
}
