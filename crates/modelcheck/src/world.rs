//! The model: seed topologies and the action alphabet.
//!
//! A [`World`] is one in-memory [`Core`] plus the client connections
//! driving it. Exploration never clones a world (the core owns live
//! hardware and channel state); instead a world is *replayed* — rebuilt
//! from its [`Seed`] and a trace of [`Action`]s, which is deterministic
//! because the core's dispatch and engine are.
//!
//! The alphabet is deliberately small and protocol-shaped: every action
//! is either one legal client request, one engine tick, or one
//! connection teardown. Illegal *combinations* (resuming a stopped
//! queue, mapping a destroyed root) are still reachable — dispatch must
//! reject them without corrupting state, and the oracle checks that it
//! does.

use crossbeam::channel::{unbounded, Receiver};
use da_proto::command::{DeviceCommand, QueueEntry};
use da_proto::event::EventMask;
use da_proto::ids::{ClientId, LoudId, ResourceId, SoundId, VDeviceId, WireId};
use da_proto::request::Request;
use da_proto::types::{Attribute, DeviceClass, QueueState, SoundType, WireType};
use da_server::core::{Core, ServerConfig, ServerMsg};
use da_server::dispatch::dispatch;
use da_server::engine;

/// Which root LOUD an action addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Root {
    /// The first root (present in every seed).
    A,
    /// The second root (present in `Duet`).
    B,
}

/// A seed topology the checker explores from (paper scenarios).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Seed {
    /// One client, one root LOUD with a player wired to an output, one
    /// uploaded sound, mapped. The §5.5 queue state machine in
    /// isolation.
    Solo,
    /// Two roots contending for the single speaker: both outputs carry
    /// [`Attribute::ExclusiveUse`], so activating one preempts the other
    /// (paper §5.4 activation/preemption, server pause).
    Duet,
    /// A second connection holds `SetRedirect`: map and raise requests
    /// detour through the audio manager's approval queue (paper §5.8),
    /// including the manager crashing with approvals outstanding.
    Manager,
}

impl Seed {
    /// Every seed, in a stable order.
    pub const ALL: [Seed; 3] = [Seed::Solo, Seed::Duet, Seed::Manager];

    /// Stable lowercase name (reports, bench records).
    pub fn name(self) -> &'static str {
        match self {
            Seed::Solo => "solo",
            Seed::Duet => "duet",
            Seed::Manager => "manager",
        }
    }
}

/// One transition of the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// `StartQueue` on a root.
    Start(Root),
    /// `StopQueue` on a root.
    Stop(Root),
    /// `PauseQueue` on a root.
    Pause(Root),
    /// `ResumeQueue` on a root.
    Resume(Root),
    /// `FlushQueue` on a root.
    Flush(Root),
    /// Enqueue one `Play` command.
    EnqueuePlay(Root),
    /// Enqueue a balanced `CoBegin [Play, Delay [Play]] CoEnd` group.
    EnqueueGroup(Root),
    /// Enqueue an *unbalanced* `CoBegin, Play` prefix (open bracket).
    EnqueueOpen(Root),
    /// Enqueue the closing `CoEnd` of a previously opened bracket (a
    /// stray closer if none is open — the parser must drop it).
    EnqueueClose(Root),
    /// `MapLoud`: push the root onto the active stack (or the manager's
    /// approval queue in the `Manager` seed).
    Map(Root),
    /// `UnmapLoud`: pop the root, server-pausing its queue.
    Unmap(Root),
    /// `RaiseLoud`: restack to the top.
    Raise(Root),
    /// `LowerLoud`: restack to the bottom.
    Lower(Root),
    /// Destroy the root's player→output wire.
    WireDisconnect(Root),
    /// Recreate the root's player→output wire.
    WireConnect(Root),
    /// One engine tick (`engine::tick`): queues advance, drains stop,
    /// failures surface.
    Tick,
    /// Manager approves the oldest pending map (`AllowMap`).
    AllowMap(Root),
    /// Manager approves the oldest pending raise (`AllowRaise`).
    AllowRaise(Root),
    /// The manager connection drops; its redirect and approval queues
    /// must be cleaned up.
    DisconnectManager,
}

/// A live model instance: the core plus the connections driving it.
pub struct World {
    /// The server state under test.
    pub core: Core,
    /// The primary client (owns all topology in every seed).
    pub client: ClientId,
    /// The audio-manager client (`Manager` seed only).
    pub manager: Option<ClientId>,
    /// Whether the manager connection is still up.
    pub manager_connected: bool,
    /// Primary client's id base (resource ids are `base + offset`).
    pub base: u32,
    rx: Receiver<ServerMsg>,
    manager_rx: Option<Receiver<ServerMsg>>,
}

// Stable id offsets inside the primary client's range.
const LOUD_A: u32 = 1;
const LOUD_B: u32 = 2;
const PLAYER_A: u32 = 0x10;
const OUT_A: u32 = 0x11;
const PLAYER_B: u32 = 0x12;
const OUT_B: u32 = 0x13;
const WIRE_A: u32 = 0x100;
const WIRE_B: u32 = 0x101;
const SOUND: u32 = 0x200;

impl World {
    /// Builds a seed topology by dispatching ordinary setup requests.
    pub fn new(seed: Seed) -> World {
        let mut core = Core::new(ServerConfig::default());
        let (tx, rx) = unbounded();
        let (client, base, _mask) = core.add_client("modelcheck".into(), tx);
        let mut w = World {
            core,
            client,
            manager: None,
            manager_connected: false,
            base,
            rx,
            manager_rx: None,
        };

        // Root A: player -> output, one short sound, mapped.
        let exclusive = match seed {
            Seed::Duet => vec![Attribute::ExclusiveUse],
            _ => Vec::new(),
        };
        w.req(Request::CreateLoud { id: w.loud(Root::A), parent: None });
        w.req(Request::CreateVDevice {
            id: w.player(Root::A),
            loud: w.loud(Root::A),
            class: DeviceClass::Player,
            attrs: Vec::new(),
        });
        w.req(Request::CreateVDevice {
            id: w.out(Root::A),
            loud: w.loud(Root::A),
            class: DeviceClass::Output,
            attrs: exclusive.clone(),
        });
        w.req(Request::CreateWire {
            id: w.wire(Root::A),
            src: w.player(Root::A),
            src_port: 0,
            dst: w.out(Root::A),
            dst_port: 0,
            wire_type: WireType::Any,
        });
        w.req(Request::CreateSound { id: SoundId(base + SOUND), stype: SoundType::TELEPHONE });
        // 400 frames at 8 kHz: drains after a handful of 10 ms ticks, so
        // the engine's drain/stop edge is reachable within the depth
        // budget.
        w.req(Request::WriteSoundData {
            id: SoundId(base + SOUND),
            data: vec![0x55; 400],
            eof: true,
        });

        match seed {
            Seed::Solo => {
                w.req(Request::MapLoud { id: w.loud(Root::A) });
            }
            Seed::Duet => {
                w.req(Request::CreateLoud { id: w.loud(Root::B), parent: None });
                w.req(Request::CreateVDevice {
                    id: w.player(Root::B),
                    loud: w.loud(Root::B),
                    class: DeviceClass::Player,
                    attrs: Vec::new(),
                });
                w.req(Request::CreateVDevice {
                    id: w.out(Root::B),
                    loud: w.loud(Root::B),
                    class: DeviceClass::Output,
                    attrs: exclusive,
                });
                w.req(Request::CreateWire {
                    id: w.wire(Root::B),
                    src: w.player(Root::B),
                    src_port: 0,
                    dst: w.out(Root::B),
                    dst_port: 0,
                    wire_type: WireType::Any,
                });
                w.req(Request::MapLoud { id: w.loud(Root::A) });
            }
            Seed::Manager => {
                let (mtx, mrx) = unbounded();
                let (mgr, mbase, _mmask) = w.core.add_client("manager".into(), mtx);
                dispatch(&mut w.core, mgr, 0, Request::SetRedirect { enable: true });
                // The manager owns a LOUD of its own, and the primary
                // client selects events on it: `DisconnectManager` must
                // then cascade the LOUD away *and* sweep the survivor's
                // cross-client selection (invariant V13).
                let mgr_loud = LoudId(mbase + 1);
                dispatch(&mut w.core, mgr, 1, Request::CreateLoud {
                    id: mgr_loud,
                    parent: None,
                });
                w.req(Request::SelectEvents {
                    target: ResourceId::Loud(mgr_loud),
                    mask: EventMask::all(),
                });
                w.manager = Some(mgr);
                w.manager_connected = true;
                w.manager_rx = Some(mrx);
                // Root A intentionally left unmapped: mapping is the
                // redirected edge under study.
            }
        }
        w.drain();
        w
    }

    /// The action alphabet available from this seed.
    pub fn alphabet(seed: Seed) -> Vec<Action> {
        use Action::*;
        use Root::{A, B};
        let mut acts = vec![
            Start(A),
            Stop(A),
            Pause(A),
            Resume(A),
            Flush(A),
            EnqueuePlay(A),
            EnqueueGroup(A),
            EnqueueOpen(A),
            EnqueueClose(A),
            Map(A),
            Unmap(A),
            Raise(A),
            Lower(A),
            Tick,
        ];
        match seed {
            Seed::Solo => {
                acts.push(WireDisconnect(A));
                acts.push(WireConnect(A));
            }
            Seed::Duet => {
                // Root B exercises contention: map/restack preempt A.
                acts.extend([
                    Start(B),
                    EnqueuePlay(B),
                    Map(B),
                    Unmap(B),
                    Raise(B),
                    Lower(B),
                ]);
            }
            Seed::Manager => {
                acts.extend([AllowMap(A), AllowRaise(A), DisconnectManager]);
            }
        }
        acts
    }

    /// Applies one action. Deterministic; pending client messages are
    /// drained (and dropped) so channels never grow across a long trace.
    pub fn apply(&mut self, action: Action) {
        use Action::*;
        match action {
            Start(r) => self.req(Request::StartQueue { loud: self.loud(r) }),
            Stop(r) => self.req(Request::StopQueue { loud: self.loud(r) }),
            Pause(r) => self.req(Request::PauseQueue { loud: self.loud(r) }),
            Resume(r) => self.req(Request::ResumeQueue { loud: self.loud(r) }),
            Flush(r) => self.req(Request::FlushQueue { loud: self.loud(r) }),
            EnqueuePlay(r) => {
                let e = self.play_entry(r);
                self.req(Request::Enqueue { loud: self.loud(r), entries: vec![e] });
            }
            EnqueueGroup(r) => {
                let p = self.play_entry(r);
                let entries = vec![
                    QueueEntry::CoBegin,
                    p.clone(),
                    QueueEntry::Delay { ms: 20 },
                    p,
                    QueueEntry::DelayEnd,
                    QueueEntry::CoEnd,
                ];
                self.req(Request::Enqueue { loud: self.loud(r), entries });
            }
            EnqueueOpen(r) => {
                let p = self.play_entry(r);
                self.req(Request::Enqueue {
                    loud: self.loud(r),
                    entries: vec![QueueEntry::CoBegin, p],
                });
            }
            EnqueueClose(r) => self.req(Request::Enqueue {
                loud: self.loud(r),
                entries: vec![QueueEntry::CoEnd],
            }),
            Map(r) => self.req(Request::MapLoud { id: self.loud(r) }),
            Unmap(r) => self.req(Request::UnmapLoud { id: self.loud(r) }),
            Raise(r) => self.req(Request::RaiseLoud { id: self.loud(r) }),
            Lower(r) => self.req(Request::LowerLoud { id: self.loud(r) }),
            WireDisconnect(r) => self.req(Request::DestroyWire { id: self.wire(r) }),
            WireConnect(r) => self.req(Request::CreateWire {
                id: self.wire(r),
                src: self.player(r),
                src_port: 0,
                dst: self.out(r),
                dst_port: 0,
                wire_type: WireType::Any,
            }),
            Tick => engine::tick(&mut self.core),
            AllowMap(r) => self.manager_req(Request::AllowMap { loud: self.loud(r) }),
            AllowRaise(r) => self.manager_req(Request::AllowRaise { loud: self.loud(r) }),
            DisconnectManager => {
                if self.manager_connected {
                    if let Some(mgr) = self.manager {
                        self.core.remove_client(mgr);
                    }
                    self.manager_connected = false;
                }
            }
        }
        self.drain();
    }

    /// Snapshot of every queue for the frozen-queue temporal invariant:
    /// `(root, state, relative_frames, pending_len, entry_cursor)`.
    pub fn queue_snapshot(&self) -> Vec<(u32, QueueState, u64, u32, u32)> {
        let mut snap: Vec<_> = self
            .core
            .louds
            .iter()
            .filter_map(|(&id, l)| {
                l.queue.as_ref().map(|q| {
                    (id, q.state(), q.relative_frames, q.pending_len(), q.entry_cursor())
                })
            })
            .collect();
        snap.sort_unstable_by_key(|s| s.0);
        snap
    }

    /// The protocol id of a root.
    pub fn loud(&self, r: Root) -> LoudId {
        LoudId(self.base + if r == Root::A { LOUD_A } else { LOUD_B })
    }

    fn player(&self, r: Root) -> VDeviceId {
        VDeviceId(self.base + if r == Root::A { PLAYER_A } else { PLAYER_B })
    }

    fn out(&self, r: Root) -> VDeviceId {
        VDeviceId(self.base + if r == Root::A { OUT_A } else { OUT_B })
    }

    fn wire(&self, r: Root) -> WireId {
        WireId(self.base + if r == Root::A { WIRE_A } else { WIRE_B })
    }

    fn play_entry(&self, r: Root) -> QueueEntry {
        QueueEntry::Device {
            vdev: self.player(r),
            cmd: DeviceCommand::Play(SoundId(self.base + SOUND)),
        }
    }

    fn req(&mut self, request: Request) {
        dispatch(&mut self.core, self.client, 0, request);
    }

    fn manager_req(&mut self, request: Request) {
        // A crashed manager sends nothing; the action degrades to a
        // no-op so traces stay well-formed after `DisconnectManager`.
        if !self.manager_connected {
            return;
        }
        if let Some(mgr) = self.manager {
            dispatch(&mut self.core, mgr, 0, request);
        }
    }

    fn drain(&mut self) {
        while self.rx.try_recv().is_ok() {}
        if let Some(mrx) = &self.manager_rx {
            while mrx.try_recv().is_ok() {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_build_clean() {
        for seed in Seed::ALL {
            let w = World::new(seed);
            assert!(
                da_server::validate::check_all(&w.core).is_empty(),
                "{seed:?} seed violates invariants"
            );
        }
    }

    #[test]
    fn solo_reaches_server_paused_via_unmap() {
        let mut w = World::new(Seed::Solo);
        w.apply(Action::EnqueuePlay(Root::A));
        w.apply(Action::Start(Root::A));
        w.apply(Action::Unmap(Root::A));
        let q = &w.core.louds[&w.loud(Root::A).0].queue;
        assert_eq!(q.as_ref().unwrap().state(), QueueState::ServerPaused);
    }

    #[test]
    fn duet_map_preempts_exclusive_speaker() {
        let mut w = World::new(Seed::Duet);
        w.apply(Action::EnqueuePlay(Root::A));
        w.apply(Action::Start(Root::A));
        // B maps on top; its exclusive output takes the only speaker, so
        // A deactivates and its queue server-pauses (paper §5.4).
        w.apply(Action::Map(Root::B));
        let qa = w.core.louds[&w.loud(Root::A).0].queue.as_ref().unwrap().state();
        assert_eq!(qa, QueueState::ServerPaused);
    }

    #[test]
    fn manager_redirect_holds_maps_until_allowed() {
        let mut w = World::new(Seed::Manager);
        w.apply(Action::Map(Root::A));
        assert!(w.core.pending_maps.contains(&w.loud(Root::A).0));
        assert!(w.core.active_stack.is_empty());
        w.apply(Action::AllowMap(Root::A));
        assert!(w.core.pending_maps.is_empty());
        assert_eq!(w.core.active_stack, vec![w.loud(Root::A).0]);
    }

    #[test]
    fn manager_disconnect_clears_redirect_state() {
        let mut w = World::new(Seed::Manager);
        w.apply(Action::Map(Root::A));
        w.apply(Action::DisconnectManager);
        assert!(
            da_server::validate::check_all(&w.core).is_empty(),
            "stale manager state after disconnect"
        );
        // Post-crash manager actions are no-ops, not panics.
        w.apply(Action::AllowMap(Root::A));
        w.apply(Action::DisconnectManager);
    }

    #[test]
    fn replay_is_deterministic() {
        let trace = [
            Action::EnqueueGroup(Root::A),
            Action::Start(Root::A),
            Action::Tick,
            Action::Pause(Root::A),
            Action::Tick,
            Action::Resume(Root::A),
            Action::Tick,
        ];
        let run = |(): ()| {
            let mut w = World::new(Seed::Solo);
            for &a in &trace {
                w.apply(a);
            }
            crate::explore::fingerprint(&w.core)
        };
        assert_eq!(run(()), run(()));
    }
}
