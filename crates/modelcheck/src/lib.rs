//! Systematic correctness tooling for the desktop-audio server.
//!
//! Two complementary instruments, both deterministic and dependency-free
//! so they can run in CI on every push:
//!
//! - [`explore`]: a bounded explicit-state model checker in the TLC
//!   tradition. It drives an in-memory [`da_server::Core`] through every
//!   interleaving of a small request alphabet (queue control, enqueue of
//!   nested `CoBegin`/`Delay` brackets, activation push/pop/restack, wire
//!   connect/disconnect, manager disconnect — the state machines of paper
//!   §5.4/§5.5/§5.8) from a set of seed topologies, deduplicating states
//!   by a canonical fingerprint and checking the full
//!   [`da_server::validate`] oracle plus temporal invariants after every
//!   transition. A violation is shrunk to a minimal trace and
//!   pretty-printed as a replayable test.
//! - [`fuzz`]: a structure-aware fuzzer for the `da-proto` wire codec:
//!   grammar-based generators for every request/reply/event shape plus
//!   byte-level mutators (truncation, length-prefix corruption, opcode
//!   splicing), checking round-trip identity, panic-freedom on arbitrary
//!   bytes, and `has_reply`/dispatch agreement.
//!
//! - [`soak`]: a concurrency soak that churns many short fault-injected
//!   Alib client sessions (via [`da_proto::fault::FaultyDuplex`]) against
//!   a live in-process server, asserting the validate catalog, engine
//!   liveness, and complete disconnect cleanup after every wave.
//!
//! - [`sched`]: a deterministic scheduler (loom-style) that explores
//!   interleavings of modeled connection-plane actors — fast-path
//!   dispatcher, slow-path writer, reaper, engine tick — over a
//!   schedule-controlled lock shim, checking the validate catalog plus
//!   aliasing/deadlock oracles (A1–A3, D1) and minimizing any breaching
//!   schedule to a replayable counterexample.
//!
//! All are exposed through the workspace automation binary:
//! `cargo run -p xtask -- explore`, `-- interleave`, `-- fuzz`, and
//! `-- soak`.

pub mod explore;
pub mod fuzz;
pub mod sched;
pub mod soak;
pub mod world;

pub use explore::{Breach, Config, Counterexample, Fault, Report};
pub use world::{Action, Root, Seed, World};

/// Deterministic xorshift64* PRNG.
///
/// The vendored `rand` shim seeds itself from the wall clock, which would
/// make fuzzing runs unreproducible; the checker and fuzzer instead share
/// this self-contained generator whose whole state is the `--seed`
/// argument.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Creates a generator from a seed (0 is remapped so the state never
    /// sticks at zero).
    pub fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..bound` (`bound` 0 yields 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Uniform `u32`.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `u8`.
    pub fn next_u8(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// Coin flip.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::Rng;

    #[test]
    fn rng_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Rng::new(0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng::new(1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
        assert_eq!(r.below(0), 0);
    }
}
