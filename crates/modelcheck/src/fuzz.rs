//! Structure-aware fuzzer for the `da-proto` wire codec.
//!
//! Three complementary properties are checked on every iteration, all
//! driven by the deterministic [`crate::Rng`] so a run is reproducible
//! from its `--seed` alone:
//!
//! 1. **Round-trip identity** — grammar-based generators build every
//!    request, reply, event, error and setup shape the protocol defines;
//!    `decode(encode(x)) == x` must hold for each.
//! 2. **Decode totality** — the valid encodings are then mangled by
//!    byte-level mutators (truncation, bit flips, length-prefix
//!    corruption, tag splicing, cross-message splicing) and fed back to
//!    the decoder, which must return `Ok` or `Err` without panicking, and
//!    — at the frame layer — must never consume more bytes than the
//!    declared payload length.
//! 3. **`has_reply`/dispatch agreement** — every generated request is
//!    dispatched into a live [`Core`]; a request for which
//!    [`Request::has_reply`] holds must produce exactly one reply or
//!    error carrying its sequence number, and one for which it does not
//!    hold must never produce a reply.
//!
//! Inputs that break a property are captured as [`Failure`]s in the
//! corpus file format (see [`corpus`]) so `xtask fuzz --corpus-out` can
//! write them straight into `tests/corpus/` as regression pins.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crossbeam::channel::{unbounded, Receiver};
use da_proto::codec::{Frame, FrameKind, WireRead, WireWrite};
use da_proto::command::{CrossbarRoute, DeviceCommand, Note, QueueEntry, RecordTermination};
use da_proto::error::{ErrorCode, ProtoError};
use da_proto::event::{CallState, Event, EventMask, QueueStopReason, RecordStopReason};
use da_proto::ids::{Atom, ClientId, DeviceId, LoudId, ResourceId, SoundId, VDeviceId, WireId};
use da_proto::reply::{
    ClientStatsData, CounterSample, GaugeSample, HardWire, HistogramSample, PhysDeviceInfo,
    Reply, ServerStatsData, StackEntry, TraceData, TraceStage, TraceStageSample,
};
use da_proto::request::Request;
use da_proto::setup::{SetupReply, SetupRequest};
use da_proto::types::{
    Attribute, DeviceClass, Encoding, Property, QueueState, SoundType, WireType,
};
use da_server::core::ServerMsg;
use da_server::{Core, ServerConfig};

use crate::Rng;

/// Fuzzing parameters.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Iterations to run.
    pub iters: u64,
    /// PRNG seed; equal seeds give byte-identical runs.
    pub seed: u64,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig { iters: 20_000, seed: 0 }
    }
}

/// A property violation, with the offending input in corpus format.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Property and message kind, e.g. `roundtrip-kind1`.
    pub name: String,
    /// The input, encoded in the corpus file format.
    pub corpus_bytes: Vec<u8>,
    /// Human-readable description of what went wrong.
    pub detail: String,
}

/// Statistics and failures from one fuzzing run.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Iterations executed.
    pub iters: u64,
    /// Round-trip checks performed.
    pub roundtrips: u64,
    /// Mutated-input decode checks performed.
    pub mutations: u64,
    /// Requests dispatched for the agreement check.
    pub dispatches: u64,
    /// Mutated inputs the decoder (correctly) rejected.
    pub rejected: u64,
    /// Property violations found.
    pub failures: Vec<Failure>,
}

impl FuzzReport {
    /// True when every property held for every input.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Corpus file format
// ---------------------------------------------------------------------------

/// Corpus file helpers.
///
/// A corpus file is `[kind, expect, payload...]`:
///
/// - `kind` — which decoder to aim the payload at: `0` = a raw frame
///   stream for [`Frame::decode`]; `1`–`6` = the payload of a
///   [`FrameKind`] with that wire tag (`1` request, `2` reply, `3` event,
///   `4` error, `5` setup request, `6` setup reply).
/// - `expect` — `1`: the payload is a canonical encoding and must decode
///   successfully (and re-encode byte-identically for kinds 1–6); `0`:
///   the payload is adversarial and the decoder may accept or reject it,
///   but must not panic or over-consume.
pub mod corpus {
    use super::*;

    /// `expect` value for canonical, must-round-trip payloads.
    pub const EXPECT_OK: u8 = 1;
    /// `expect` value for adversarial payloads.
    pub const EXPECT_TOTAL: u8 = 0;

    /// Builds a corpus file image.
    pub fn entry(kind: u8, expect: u8, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(payload.len() + 2);
        out.push(kind);
        out.push(expect);
        out.extend_from_slice(payload);
        out
    }

    /// Replays one corpus file, re-checking the property it pins.
    ///
    /// Returns `Err` with a description if the property no longer holds.
    pub fn replay(bytes: &[u8]) -> Result<(), String> {
        if bytes.len() < 2 {
            return Err("corpus file shorter than its 2-byte header".into());
        }
        let (kind, expect, payload) = (bytes[0], bytes[1], &bytes[2..]);
        if kind == 0 {
            return replay_frame_stream(expect, payload);
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| decode_reencode(kind, payload)));
        match outcome {
            Err(_) => Err(format!("decoder panicked on kind-{kind} corpus payload")),
            Ok(Err(e)) if expect == EXPECT_OK => {
                Err(format!("canonical kind-{kind} payload no longer decodes: {e}"))
            }
            Ok(Ok(reencoded)) if expect == EXPECT_OK && reencoded != payload => {
                Err(format!("kind-{kind} payload decodes but re-encodes differently"))
            }
            Ok(_) => Ok(()),
        }
    }

    /// Decodes `payload` as the message kind with wire tag `kind` and
    /// returns its re-encoding (for the canonical round-trip check).
    fn decode_reencode(kind: u8, payload: &[u8]) -> Result<Vec<u8>, String> {
        fn go<T: WireRead + WireWrite>(payload: &[u8]) -> Result<Vec<u8>, String> {
            T::from_wire(payload).map(|v| v.to_wire().to_vec()).map_err(|e| e.to_string())
        }
        match kind {
            1 => go::<Request>(payload),
            2 => go::<Reply>(payload),
            3 => go::<Event>(payload),
            4 => go::<ProtoError>(payload),
            5 => go::<SetupRequest>(payload),
            6 => go::<SetupReply>(payload),
            other => Err(format!("unknown corpus kind {other}")),
        }
    }

    /// Replays a kind-0 corpus file: runs [`Frame::decode`] over the byte
    /// stream, checking panic-freedom and the consumption bound; with
    /// [`EXPECT_OK`], at least one complete frame must decode.
    fn replay_frame_stream(expect: u8, payload: &[u8]) -> Result<(), String> {
        let mut decoded = 0usize;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut buf = bytes::BytesMut::from(payload);
            loop {
                let before = buf.len();
                match Frame::decode(&mut buf) {
                    Ok(Some(frame)) => {
                        let consumed = before - buf.len();
                        if consumed != frame.payload.len() + 5 {
                            return Err(format!(
                                "frame declared {} payload bytes but decode consumed {}",
                                frame.payload.len(),
                                consumed
                            ));
                        }
                        decoded += 1;
                    }
                    Ok(None) => return Ok(()),
                    Err(_) => return Ok(()),
                }
            }
        }));
        match outcome {
            Err(_) => Err("Frame::decode panicked on corpus stream".into()),
            Ok(Err(e)) => Err(e),
            Ok(Ok(())) if expect == EXPECT_OK && decoded == 0 => {
                Err("canonical frame stream no longer yields a frame".into())
            }
            Ok(Ok(())) => Ok(()),
        }
    }
}

// ---------------------------------------------------------------------------
// Grammar-based generators
// ---------------------------------------------------------------------------

/// Generators for every message shape the protocol defines.
///
/// Ids mix small values (which hit live resources when dispatched) with
/// arbitrary 32-bit ones; strings and lists stay short so throughput is
/// dominated by shape coverage, not payload size.
pub mod gen {
    use super::*;

    fn small_u32(rng: &mut Rng) -> u32 {
        match rng.below(3) {
            0 => rng.below(8) as u32,
            1 => 0x100 + rng.below(16) as u32,
            _ => rng.next_u32(),
        }
    }

    pub fn string(rng: &mut Rng) -> String {
        const WORDS: [&str; 8] =
            ["", "a", "speaker", "phone", "µ-law", "desktop", "catalog/greetings", "x"];
        WORDS[rng.below(WORDS.len() as u64) as usize].to_string()
    }

    pub fn blob(rng: &mut Rng) -> Vec<u8> {
        let n = rng.below(24) as usize;
        (0..n).map(|_| rng.next_u8()).collect()
    }

    pub fn loud(rng: &mut Rng) -> LoudId {
        LoudId(small_u32(rng))
    }

    pub fn vdev(rng: &mut Rng) -> VDeviceId {
        VDeviceId(small_u32(rng))
    }

    pub fn wire(rng: &mut Rng) -> WireId {
        WireId(small_u32(rng))
    }

    pub fn sound(rng: &mut Rng) -> SoundId {
        SoundId(small_u32(rng))
    }

    pub fn atom(rng: &mut Rng) -> Atom {
        Atom(small_u32(rng))
    }

    pub fn resource(rng: &mut Rng) -> ResourceId {
        match rng.below(4) {
            0 => ResourceId::Loud(loud(rng)),
            1 => ResourceId::VDevice(vdev(rng)),
            2 => ResourceId::Sound(sound(rng)),
            _ => ResourceId::Device(DeviceId(small_u32(rng))),
        }
    }

    pub fn encoding(rng: &mut Rng) -> Encoding {
        [Encoding::ULaw, Encoding::ALaw, Encoding::Pcm8, Encoding::Pcm16, Encoding::ImaAdpcm]
            [rng.below(5) as usize]
    }

    pub fn sound_type(rng: &mut Rng) -> SoundType {
        SoundType {
            encoding: encoding(rng),
            sample_rate: [8_000, 11_025, 44_100, 0][rng.below(4) as usize],
            channels: rng.below(3) as u8,
        }
    }

    pub fn device_class(rng: &mut Rng) -> DeviceClass {
        DeviceClass::ALL[rng.below(DeviceClass::ALL.len() as u64) as usize]
    }

    pub fn wire_type(rng: &mut Rng) -> WireType {
        match rng.below(3) {
            0 => WireType::Any,
            1 => WireType::Analog,
            _ => WireType::Digital(sound_type(rng)),
        }
    }

    pub fn attribute(rng: &mut Rng) -> Attribute {
        match rng.below(18) {
            0 => Attribute::Device(DeviceId(small_u32(rng))),
            1 => Attribute::Name(string(rng)),
            2 => Attribute::Encoding(encoding(rng)),
            3 => Attribute::SampleRate(small_u32(rng)),
            4 => Attribute::Channels(rng.next_u8()),
            5 => Attribute::AmbientDomain(small_u32(rng)),
            6 => Attribute::ExclusiveInput,
            7 => Attribute::ExclusiveOutput,
            8 => Attribute::ExclusiveUse,
            9 => Attribute::SupportsAgc,
            10 => Attribute::SupportsPauseCompression,
            11 => Attribute::SupportsPauseDetection,
            12 => Attribute::PhoneNumber(string(rng)),
            13 => Attribute::PhoneLines(rng.next_u8()),
            14 => Attribute::CallerId(rng.chance(1, 2)),
            15 => Attribute::SourcePorts(rng.next_u8()),
            16 => Attribute::SinkPorts(rng.next_u8()),
            _ => Attribute::Extension(atom(rng), blob(rng)),
        }
    }

    pub fn attributes(rng: &mut Rng) -> Vec<Attribute> {
        let n = rng.below(4) as usize;
        (0..n).map(|_| attribute(rng)).collect()
    }

    pub fn record_termination(rng: &mut Rng) -> RecordTermination {
        match rng.below(4) {
            0 => RecordTermination::Manual,
            1 => RecordTermination::MaxFrames(rng.next_u64() >> rng.below(60)),
            2 => RecordTermination::OnPause {
                threshold: rng.next_u32() as u16,
                min_silence_frames: rng.below(16_000),
            },
            _ => RecordTermination::OnHangup,
        }
    }

    /// One of all 22 device-command shapes.
    pub fn device_command(rng: &mut Rng) -> DeviceCommand {
        match rng.below(22) {
            0 => DeviceCommand::Stop,
            1 => DeviceCommand::Pause,
            2 => DeviceCommand::Resume,
            3 => DeviceCommand::ChangeGain(small_u32(rng)),
            4 => DeviceCommand::Play(sound(rng)),
            5 => DeviceCommand::Record(sound(rng), record_termination(rng)),
            6 => DeviceCommand::Dial(string(rng)),
            7 => DeviceCommand::Answer,
            8 => DeviceCommand::SendDtmf(string(rng)),
            9 => DeviceCommand::SetMixGain { input: rng.next_u8(), percent: rng.next_u8() },
            10 => DeviceCommand::SpeakText(string(rng)),
            11 => DeviceCommand::SetTextLanguage(string(rng)),
            12 => DeviceCommand::SetVoiceValues {
                rate_wpm: rng.next_u32() as u16,
                pitch_hz: rng.next_u32() as u16,
            },
            13 => {
                let n = rng.below(3) as usize;
                DeviceCommand::SetExceptionList(
                    (0..n).map(|_| (string(rng), string(rng))).collect(),
                )
            }
            14 => DeviceCommand::Train { word: string(rng), template: sound(rng) },
            15 => {
                let n = rng.below(4) as usize;
                DeviceCommand::SetVocabulary((0..n).map(|_| string(rng)).collect())
            }
            16 => DeviceCommand::AdjustContext(rng.next_u32() as i32),
            17 => DeviceCommand::SaveVocabulary(string(rng)),
            18 => DeviceCommand::PlayNote(Note {
                note: rng.next_u8(),
                velocity: rng.next_u8(),
                duration_ms: rng.below(5_000) as u32,
            }),
            19 => DeviceCommand::SetVoice(string(rng)),
            20 => DeviceCommand::SetMusicState { tempo_bpm: rng.next_u32() as u16 },
            _ => {
                let n = rng.below(3) as usize;
                DeviceCommand::SetRoutes(
                    (0..n)
                        .map(|_| CrossbarRoute {
                            input: rng.next_u8(),
                            output: rng.next_u8(),
                            connected: rng.chance(1, 2),
                        })
                        .collect(),
                )
            }
        }
    }

    /// One of all 5 queue-entry shapes.
    pub fn queue_entry(rng: &mut Rng) -> QueueEntry {
        match rng.below(5) {
            0 => QueueEntry::Device { vdev: vdev(rng), cmd: device_command(rng) },
            1 => QueueEntry::CoBegin,
            2 => QueueEntry::CoEnd,
            3 => QueueEntry::Delay { ms: rng.below(1_000) as u32 },
            _ => QueueEntry::DelayEnd,
        }
    }

    /// One of all 50 request opcodes, chosen uniformly.
    pub fn request(rng: &mut Rng) -> Request {
        match rng.below(Request::COUNT as u64) {
            0 => Request::CreateLoud {
                id: loud(rng),
                parent: if rng.chance(1, 2) { Some(loud(rng)) } else { None },
            },
            1 => Request::DestroyLoud { id: loud(rng) },
            2 => Request::MapLoud { id: loud(rng) },
            3 => Request::UnmapLoud { id: loud(rng) },
            4 => Request::RaiseLoud { id: loud(rng) },
            5 => Request::LowerLoud { id: loud(rng) },
            6 => Request::RequestActivate { id: loud(rng) },
            7 => Request::RequestDeactivate { id: loud(rng) },
            8 => Request::QueryActiveStack,
            9 => Request::CreateVDevice {
                id: vdev(rng),
                loud: loud(rng),
                class: device_class(rng),
                attrs: attributes(rng),
            },
            10 => Request::DestroyVDevice { id: vdev(rng) },
            11 => Request::AugmentVDevice { id: vdev(rng), attrs: attributes(rng) },
            12 => Request::QueryVDeviceAttributes { id: vdev(rng) },
            13 => Request::SetDeviceControl { id: vdev(rng), name: atom(rng), value: blob(rng) },
            14 => Request::GetDeviceControl { id: vdev(rng), name: atom(rng) },
            15 => Request::CreateWire {
                id: wire(rng),
                src: vdev(rng),
                src_port: rng.next_u8(),
                dst: vdev(rng),
                dst_port: rng.next_u8(),
                wire_type: wire_type(rng),
            },
            16 => Request::DestroyWire { id: wire(rng) },
            17 => Request::QueryWire { id: wire(rng) },
            18 => Request::QueryDeviceWires { id: vdev(rng) },
            19 => {
                let n = rng.below(4) as usize;
                Request::Enqueue {
                    loud: loud(rng),
                    entries: (0..n).map(|_| queue_entry(rng)).collect(),
                }
            }
            20 => Request::Immediate { vdev: vdev(rng), cmd: device_command(rng) },
            21 => Request::StartQueue { loud: loud(rng) },
            22 => Request::StopQueue { loud: loud(rng) },
            23 => Request::PauseQueue { loud: loud(rng) },
            24 => Request::ResumeQueue { loud: loud(rng) },
            25 => Request::FlushQueue { loud: loud(rng) },
            26 => Request::QueryQueue { loud: loud(rng) },
            27 => Request::CreateSound { id: sound(rng), stype: sound_type(rng) },
            28 => Request::DeleteSound { id: sound(rng) },
            29 => Request::WriteSoundData {
                id: sound(rng),
                data: blob(rng),
                eof: rng.chance(1, 2),
            },
            30 => Request::ReadSoundData {
                id: sound(rng),
                offset: rng.below(1 << 20),
                len: rng.below(4_096) as u32,
            },
            31 => Request::QuerySound { id: sound(rng) },
            32 => Request::ListCatalog { catalog: string(rng) },
            33 => Request::OpenCatalogSound {
                id: sound(rng),
                catalog: string(rng),
                name: string(rng),
            },
            34 => Request::SelectEvents {
                target: resource(rng),
                mask: EventMask(rng.next_u32() & EventMask::all().0),
            },
            35 => Request::SetSyncInterval {
                vdev: vdev(rng),
                interval_frames: rng.below(16_000) as u32,
            },
            36 => Request::InternAtom { name: string(rng) },
            37 => Request::GetAtomName { atom: atom(rng) },
            38 => Request::ChangeProperty {
                target: resource(rng),
                name: atom(rng),
                type_: atom(rng),
                value: blob(rng),
            },
            39 => Request::GetProperty { target: resource(rng), name: atom(rng) },
            40 => Request::DeleteProperty { target: resource(rng), name: atom(rng) },
            41 => Request::ListProperties { target: resource(rng) },
            42 => Request::QueryDeviceLoud,
            43 => Request::SetRedirect { enable: rng.chance(1, 2) },
            44 => Request::AllowMap { loud: loud(rng) },
            45 => Request::AllowRaise { loud: loud(rng) },
            46 => Request::GetServerInfo,
            47 => Request::Sync,
            48 => Request::QueryServerStats,
            49 => Request::ListClients,
            _ => Request::QueryTraces { max: rng.below(512) as u32 },
        }
    }

    pub fn queue_state(rng: &mut Rng) -> QueueState {
        [QueueState::Started, QueueState::Stopped, QueueState::ClientPaused,
            QueueState::ServerPaused][rng.below(4) as usize]
    }

    fn counter_samples(rng: &mut Rng) -> Vec<CounterSample> {
        let n = rng.below(3) as usize;
        (0..n).map(|_| CounterSample { name: string(rng), value: rng.next_u64() }).collect()
    }

    fn server_stats(rng: &mut Rng) -> ServerStatsData {
        ServerStatsData {
            captured_at_tick: rng.next_u64(),
            device_time: rng.next_u64(),
            per_opcode: (0..rng.below(8)).map(|_| rng.next_u64()).collect(),
            counters: counter_samples(rng),
            gauges: (0..rng.below(3))
                .map(|_| GaugeSample { name: string(rng), value: rng.next_u64() as i64 })
                .collect(),
            histograms: (0..rng.below(2))
                .map(|_| HistogramSample {
                    name: string(rng),
                    count: rng.below(1_000),
                    sum: rng.next_u64(),
                    buckets: (0..rng.below(8)).map(|_| rng.below(100)).collect(),
                })
                .collect(),
        }
    }

    fn trace_data(rng: &mut Rng) -> TraceData {
        // Stages are a (possibly empty) ordered prefix of the taxonomy,
        // the only shape the recorder produces.
        let stamped = rng.below(TraceStage::COUNT as u64 + 1) as usize;
        TraceData {
            client: ClientId(small_u32(rng)),
            seq: rng.next_u32(),
            opcode: rng.next_u8(),
            fast_path: rng.chance(1, 2),
            shard_wait_us: rng.next_u64(),
            engine_tick: rng.next_u64(),
            stages: (0..stamped)
                .filter_map(|i| TraceStage::from_u8(i as u8))
                .map(|stage| TraceStageSample { stage, at_us: rng.next_u64() })
                .collect(),
        }
    }

    /// One of all 19 reply shapes.
    pub fn reply(rng: &mut Rng) -> Reply {
        match rng.below(19) {
            0 => Reply::VDeviceAttributes {
                attrs: attributes(rng),
                mapped_device: if rng.chance(1, 2) {
                    Some(DeviceId(small_u32(rng)))
                } else {
                    None
                },
            },
            1 => Reply::DeviceControl {
                value: if rng.chance(1, 2) { Some(blob(rng)) } else { None },
            },
            2 => Reply::WireInfo {
                src: vdev(rng),
                src_port: rng.next_u8(),
                dst: vdev(rng),
                dst_port: rng.next_u8(),
                wire_type: wire_type(rng),
            },
            3 => {
                let n = rng.below(4) as usize;
                Reply::DeviceWires { wires: (0..n).map(|_| wire(rng)).collect() }
            }
            4 => Reply::QueueInfo {
                state: queue_state(rng),
                pending: rng.below(64) as u32,
                relative_frames: rng.next_u64(),
            },
            5 => Reply::SoundData { data: blob(rng), at_end: rng.chance(1, 2) },
            6 => Reply::SoundInfo {
                stype: sound_type(rng),
                bytes: rng.next_u64(),
                frames: rng.next_u64(),
                complete: rng.chance(1, 2),
            },
            7 => {
                let n = rng.below(4) as usize;
                Reply::Catalog { names: (0..n).map(|_| string(rng)).collect() }
            }
            8 => Reply::Atom { atom: atom(rng) },
            9 => Reply::AtomName { name: string(rng) },
            10 => Reply::Property {
                property: if rng.chance(1, 2) {
                    Some(Property { name: atom(rng), type_: atom(rng), value: blob(rng) })
                } else {
                    None
                },
            },
            11 => {
                let n = rng.below(4) as usize;
                Reply::PropertyList { names: (0..n).map(|_| atom(rng)).collect() }
            }
            12 => Reply::DeviceLoud {
                devices: (0..rng.below(3))
                    .map(|_| PhysDeviceInfo {
                        id: DeviceId(small_u32(rng)),
                        class: device_class(rng),
                        attrs: attributes(rng),
                        domains: (0..rng.below(3)).map(|_| small_u32(rng)).collect(),
                    })
                    .collect(),
                hard_wires: (0..rng.below(3))
                    .map(|_| HardWire {
                        src: DeviceId(small_u32(rng)),
                        src_port: rng.next_u8(),
                        dst: DeviceId(small_u32(rng)),
                        dst_port: rng.next_u8(),
                    })
                    .collect(),
            },
            13 => Reply::ActiveStack {
                entries: (0..rng.below(4))
                    .map(|_| StackEntry { loud: loud(rng), active: rng.chance(1, 2) })
                    .collect(),
            },
            14 => Reply::ServerInfo {
                vendor: string(rng),
                protocol_major: rng.next_u32() as u16,
                protocol_minor: rng.next_u32() as u16,
                device_time: rng.next_u64(),
            },
            15 => Reply::Sync,
            16 => Reply::ServerStats { stats: server_stats(rng) },
            18 => Reply::Traces {
                traces: (0..rng.below(4)).map(|_| trace_data(rng)).collect(),
            },
            _ => Reply::ClientList {
                clients: (0..rng.below(3))
                    .map(|_| ClientStatsData {
                        client: ClientId(small_u32(rng)),
                        name: string(rng),
                        requests: rng.next_u64(),
                        replies: rng.next_u64(),
                        events: rng.next_u64(),
                        errors: rng.next_u64(),
                        bytes_in: rng.next_u64(),
                        bytes_out: rng.next_u64(),
                        louds: rng.below(16) as u32,
                        vdevs: rng.below(16) as u32,
                        wires: rng.below(16) as u32,
                        sounds: rng.below(16) as u32,
                    })
                    .collect(),
            },
        }
    }

    /// One of all 20 event shapes.
    pub fn event(rng: &mut Rng) -> Event {
        let queue_stop = [QueueStopReason::ClientRequest, QueueStopReason::Drained,
            QueueStopReason::Error, QueueStopReason::Unpausable];
        let record_stop = [RecordStopReason::Manual, RecordStopReason::MaxFrames,
            RecordStopReason::PauseDetected, RecordStopReason::Hangup];
        let call_states = [CallState::Idle, CallState::Dialing, CallState::Ringback,
            CallState::Ringing, CallState::Connected, CallState::Busy, CallState::HungUp,
            CallState::NoAnswer];
        match rng.below(20) {
            0 => Event::QueueStarted { loud: loud(rng) },
            1 => Event::QueueStopped {
                loud: loud(rng),
                reason: queue_stop[rng.below(4) as usize],
            },
            2 => Event::QueuePaused { loud: loud(rng), by_server: rng.chance(1, 2) },
            3 => Event::QueueResumed { loud: loud(rng) },
            4 => Event::CommandDone {
                loud: loud(rng),
                vdev: vdev(rng),
                index: rng.below(256) as u32,
                at_frame: rng.next_u64(),
            },
            5 => Event::PlayStarted { vdev: vdev(rng), sound: sound(rng) },
            6 => Event::RecordStarted { vdev: vdev(rng), sound: sound(rng) },
            7 => Event::RecordStopped {
                vdev: vdev(rng),
                sound: sound(rng),
                reason: record_stop[rng.below(4) as usize],
                frames: rng.next_u64(),
            },
            8 => Event::CallProgress {
                device: resource(rng),
                state: call_states[rng.below(8) as usize],
                caller_id: if rng.chance(1, 2) { Some(string(rng)) } else { None },
            },
            9 => Event::DtmfReceived { device: resource(rng), digit: rng.next_u8() },
            10 => Event::WordRecognized {
                vdev: vdev(rng),
                word: string(rng),
                score: rng.below(1_001) as u32,
            },
            11 => Event::SoundUnderrun {
                vdev: vdev(rng),
                sound: sound(rng),
                missing_frames: rng.next_u64(),
            },
            12 => Event::SyncMark {
                vdev: vdev(rng),
                sound: if rng.chance(1, 2) { Some(sound(rng)) } else { None },
                position: rng.next_u64(),
                device_time: rng.next_u64(),
            },
            13 => Event::MapNotify { loud: loud(rng) },
            14 => Event::UnmapNotify { loud: loud(rng) },
            15 => Event::ActivateNotify { loud: loud(rng) },
            16 => Event::DeactivateNotify { loud: loud(rng) },
            17 => Event::PropertyNotify {
                target: resource(rng),
                name: atom(rng),
                deleted: rng.chance(1, 2),
            },
            18 => Event::MapRequest { loud: loud(rng), client: ClientId(small_u32(rng)) },
            _ => Event::RaiseRequest { loud: loud(rng), client: ClientId(small_u32(rng)) },
        }
    }

    /// One of all 14 protocol-error shapes.
    pub fn proto_error(rng: &mut Rng) -> ProtoError {
        let code = ErrorCode::ALL[rng.below(ErrorCode::ALL.len() as u64) as usize];
        ProtoError::new(code, rng.next_u32(), string(rng))
    }

    pub fn setup_request(rng: &mut Rng) -> SetupRequest {
        SetupRequest {
            protocol_major: rng.next_u32() as u16,
            protocol_minor: rng.next_u32() as u16,
            client_name: string(rng),
        }
    }

    pub fn setup_reply(rng: &mut Rng) -> SetupReply {
        SetupReply {
            protocol_major: rng.next_u32() as u16,
            protocol_minor: rng.next_u32() as u16,
            client: ClientId(small_u32(rng)),
            id_base: rng.next_u32() & 0xFFFF_0000,
            id_mask: 0xFFFF,
            vendor: string(rng),
        }
    }
}

// ---------------------------------------------------------------------------
// Byte-level mutators
// ---------------------------------------------------------------------------

/// Mangles a valid encoding into an adversarial one.
///
/// Strategies: truncation at a random cut, random bit flips, length-prefix
/// corruption (a 4-byte window forced to `0xFF` or zero — count prefixes
/// are little-endian `u32`s, so this manufactures absurd declared
/// lengths), leading-tag splice, and cross-encoding splicing (head of one
/// message grafted onto the tail of another).
pub fn mutate(rng: &mut Rng, bytes: &[u8], other: &[u8]) -> Vec<u8> {
    let mut out = bytes.to_vec();
    match rng.below(5) {
        // Truncate.
        0 => {
            let cut = rng.below(out.len() as u64 + 1) as usize;
            out.truncate(cut);
        }
        // Flip 1-4 random bits.
        1 => {
            if !out.is_empty() {
                for _ in 0..=rng.below(4) {
                    let i = rng.below(out.len() as u64) as usize;
                    out[i] ^= 1 << rng.below(8);
                }
            }
        }
        // Corrupt a (potential) length prefix.
        2 => {
            if out.len() >= 4 {
                let i = rng.below(out.len() as u64 - 3) as usize;
                let v = if rng.chance(1, 2) { 0xFF } else { 0x00 };
                out[i..i + 4].fill(v);
            }
        }
        // Splice the leading tag byte.
        3 => {
            if let Some(first) = out.first_mut() {
                *first = rng.next_u8();
            }
        }
        // Cross-splice with another encoding.
        _ => {
            let head = rng.below(out.len() as u64 + 1) as usize;
            let tail = rng.below(other.len() as u64 + 1) as usize;
            out.truncate(head);
            out.extend_from_slice(&other[..tail]);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// The fuzzing loop
// ---------------------------------------------------------------------------

/// A live dispatch target for the `has_reply` agreement check.
struct DispatchRig {
    core: Core,
    client: ClientId,
    rx: Receiver<ServerMsg>,
}

impl DispatchRig {
    fn new() -> Self {
        let mut core = Core::new(ServerConfig::default());
        let (tx, rx) = unbounded();
        let (client, _base, _mask) = core.add_client("fuzz".into(), tx);
        DispatchRig { core, client, rx }
    }

    /// Dispatches `request` and checks reply/seq agreement. Returns an
    /// error description on disagreement; `None` when the property held.
    fn check(&mut self, seq: u32, request: &Request) -> Option<String> {
        let wants_reply = request.has_reply();
        da_server::dispatch::dispatch(&mut self.core, self.client, seq, request.clone());
        let mut replies = 0u32;
        let mut errors = 0u32;
        while let Ok(msg) = self.rx.try_recv() {
            match msg {
                ServerMsg::Reply(s, _) if s == seq => replies += 1,
                ServerMsg::Error(s, _) if s == seq => errors += 1,
                _ => {}
            }
        }
        if wants_reply && replies + errors != 1 {
            Some(format!(
                "has_reply request got {replies} replies + {errors} errors (want exactly 1)"
            ))
        } else if !wants_reply && replies > 0 {
            Some(format!("fire-and-forget request got {replies} replies"))
        } else {
            None
        }
    }
}

/// Builds the canonical payload for message kind `kind` (wire tags as in
/// [`corpus`]), returning the encoded bytes.
fn gen_payload(rng: &mut Rng, kind: u8) -> (Vec<u8>, Option<Request>) {
    match kind {
        1 => {
            let req = gen::request(rng);
            (req.to_wire().to_vec(), Some(req))
        }
        2 => (gen::reply(rng).to_wire().to_vec(), None),
        3 => (gen::event(rng).to_wire().to_vec(), None),
        4 => (gen::proto_error(rng).to_wire().to_vec(), None),
        5 => (gen::setup_request(rng).to_wire().to_vec(), None),
        _ => (gen::setup_reply(rng).to_wire().to_vec(), None),
    }
}

/// Runs the fuzzer. Deterministic in `cfg.seed`; every iteration
/// exercises all three properties on a freshly generated message.
pub fn fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let mut rng = Rng::new(cfg.seed);
    let mut report = FuzzReport::default();
    let mut rig = DispatchRig::new();
    let mut prev_encoding: Vec<u8> = Vec::new();

    for iter in 0..cfg.iters {
        report.iters = iter + 1;
        // Requests get half the budget (they also feed the dispatch
        // check); the other kinds share the rest.
        let kind = if rng.chance(1, 2) { 1 } else { 2 + rng.below(5) as u8 };
        let (payload, request) = gen_payload(&mut rng, kind);

        // Property 1: round-trip identity on the canonical encoding.
        report.roundtrips += 1;
        if let Err(detail) = check_roundtrip(kind, &payload) {
            report.failures.push(Failure {
                name: format!("roundtrip-kind{kind}"),
                corpus_bytes: corpus::entry(kind, corpus::EXPECT_OK, &payload),
                detail,
            });
        }

        // Property 3: has_reply/dispatch agreement on valid requests.
        if let Some(req) = request {
            let seq = iter as u32;
            let outcome = catch_unwind(AssertUnwindSafe(|| rig.check(seq, &req)));
            match outcome {
                Err(_) => {
                    report.failures.push(Failure {
                        name: "dispatch-panic".into(),
                        corpus_bytes: corpus::entry(1, corpus::EXPECT_OK, &payload),
                        detail: format!("dispatch panicked on {req:?}"),
                    });
                    rig = DispatchRig::new();
                }
                Ok(Some(detail)) => report.failures.push(Failure {
                    name: "dispatch-agreement".into(),
                    corpus_bytes: corpus::entry(1, corpus::EXPECT_OK, &payload),
                    detail,
                }),
                Ok(None) => {}
            }
            report.dispatches += 1;
            // Bound resource growth from thousands of creation requests.
            if iter % 1024 == 1023 {
                rig = DispatchRig::new();
            }
        }

        // Property 2: decode totality on mutated encodings.
        let mutated = mutate(&mut rng, &payload, &prev_encoding);
        report.mutations += 1;
        match catch_unwind(AssertUnwindSafe(|| decode_any(kind, &mutated))) {
            Err(_) => report.failures.push(Failure {
                name: format!("decode-panic-kind{kind}"),
                corpus_bytes: corpus::entry(kind, corpus::EXPECT_TOTAL, &mutated),
                detail: "decoder panicked on mutated input".into(),
            }),
            Ok(false) => report.rejected += 1,
            Ok(true) => {}
        }

        // Frame-layer check on a small multi-frame stream.
        if iter % 16 == 0 {
            let stream = build_frame_stream(&mut rng, &payload);
            let mangled = mutate(&mut rng, &stream, &prev_encoding);
            report.mutations += 1;
            if let Err(detail) =
                corpus::replay(&corpus::entry(0, corpus::EXPECT_TOTAL, &mangled))
            {
                report.failures.push(Failure {
                    name: "frame-stream".into(),
                    corpus_bytes: corpus::entry(0, corpus::EXPECT_TOTAL, &mangled),
                    detail,
                });
            }
        }

        prev_encoding = payload;
        // A runaway failure count means something fundamental broke;
        // stop early and keep the evidence readable.
        if report.failures.len() >= 16 {
            break;
        }
    }
    report
}

/// Round-trip check: decode the canonical payload and compare.
fn check_roundtrip(kind: u8, payload: &[u8]) -> Result<(), String> {
    corpus::replay(&corpus::entry(kind, corpus::EXPECT_OK, payload))
}

/// Decode-totality probe: `true` if the decoder accepted the bytes,
/// `false` if it returned an error. Panics propagate to the caller's
/// `catch_unwind`.
fn decode_any(kind: u8, bytes: &[u8]) -> bool {
    match kind {
        1 => Request::from_wire(bytes).is_ok(),
        2 => Reply::from_wire(bytes).is_ok(),
        3 => Event::from_wire(bytes).is_ok(),
        4 => ProtoError::from_wire(bytes).is_ok(),
        5 => SetupRequest::from_wire(bytes).is_ok(),
        _ => SetupReply::from_wire(bytes).is_ok(),
    }
}

/// Concatenates 1-3 frames wrapping `payload` into one byte stream.
fn build_frame_stream(rng: &mut Rng, payload: &[u8]) -> Vec<u8> {
    let kinds = [FrameKind::Request, FrameKind::Reply, FrameKind::Event, FrameKind::Error,
        FrameKind::Setup, FrameKind::SetupReply];
    let mut out = Vec::new();
    for _ in 0..=rng.below(3) {
        let frame =
            Frame { kind: kinds[rng.below(6) as usize], payload: bytes::Bytes::from(payload) };
        out.extend_from_slice(&frame.encode());
    }
    out
}

// ---------------------------------------------------------------------------
// Seed corpus
// ---------------------------------------------------------------------------

/// Deterministically builds the checked-in seed corpus: for every message
/// kind a canonical encoding plus truncated, tag-spliced and
/// length-corrupted mutants, and frame-stream edges (oversized declared
/// length, bad kind tag, truncated header). `xtask fuzz --corpus-out`
/// writes these to `tests/corpus/`, where an integration test replays
/// them.
pub fn seed_corpus() -> Vec<(String, Vec<u8>)> {
    let mut rng = Rng::new(0x00C0_FFEE);
    let mut out = Vec::new();
    for kind in 1u8..=6 {
        let name = ["frames", "request", "reply", "event", "error", "setup", "setup-reply"]
            [kind as usize];
        let (payload, _) = gen_payload(&mut rng, kind);
        out.push((format!("rt-{name}.bin"), corpus::entry(kind, corpus::EXPECT_OK, &payload)));
        let truncated = &payload[..payload.len() / 2];
        out.push((
            format!("trunc-{name}.bin"),
            corpus::entry(kind, corpus::EXPECT_TOTAL, truncated),
        ));
        let mut spliced = payload.clone();
        if let Some(first) = spliced.first_mut() {
            *first = 0xEE;
        }
        out.push((
            format!("badtag-{name}.bin"),
            corpus::entry(kind, corpus::EXPECT_TOTAL, &spliced),
        ));
        let mut lencorrupt = payload.clone();
        if lencorrupt.len() >= 5 {
            let n = lencorrupt.len();
            lencorrupt[n - 4..].fill(0xFF);
        }
        out.push((
            format!("len-{name}.bin"),
            corpus::entry(kind, corpus::EXPECT_TOTAL, &lencorrupt),
        ));
    }

    // Frame-stream edges.
    let (payload, _) = gen_payload(&mut rng, 1);
    let frame = Frame { kind: FrameKind::Request, payload: bytes::Bytes::from(&payload[..]) };
    out.push(("rt-frames.bin".into(), corpus::entry(0, corpus::EXPECT_OK, &frame.encode())));
    // Declared length over MAX_FRAME_PAYLOAD: decode must reject, not
    // allocate.
    let mut oversized = Vec::new();
    oversized.extend_from_slice(&(da_proto::codec::MAX_FRAME_PAYLOAD as u32 + 1).to_le_bytes());
    oversized.push(1);
    oversized.extend_from_slice(&[0u8; 16]);
    out.push(("frame-oversized.bin".into(), corpus::entry(0, corpus::EXPECT_TOTAL, &oversized)));
    // Unknown frame-kind tag after a valid length.
    let mut badkind = Vec::new();
    badkind.extend_from_slice(&4u32.to_le_bytes());
    badkind.push(0xEE);
    badkind.extend_from_slice(&[0u8; 4]);
    out.push(("frame-badkind.bin".into(), corpus::entry(0, corpus::EXPECT_TOTAL, &badkind)));
    // Truncated header.
    out.push(("frame-short.bin".into(), corpus::entry(0, corpus::EXPECT_TOTAL, &[0x03, 0x00])));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuzz_run_is_deterministic() {
        let cfg = FuzzConfig { iters: 500, seed: 42 };
        let a = fuzz(&cfg);
        let b = fuzz(&cfg);
        assert_eq!(a.roundtrips, b.roundtrips);
        assert_eq!(a.mutations, b.mutations);
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.failures.len(), b.failures.len());
    }

    #[test]
    fn short_fuzz_run_is_clean() {
        let report = fuzz(&FuzzConfig { iters: 2_000, seed: 0 });
        assert!(
            report.clean(),
            "fuzzer found violations: {:?}",
            report.failures.iter().map(|f| (&f.name, &f.detail)).collect::<Vec<_>>()
        );
        assert_eq!(report.iters, 2_000);
        assert!(report.rejected > 0, "mutators never produced a rejected input");
        assert!(report.dispatches > 0, "agreement check never dispatched");
    }

    #[test]
    fn generators_cover_every_request_opcode() {
        let mut rng = Rng::new(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5_000 {
            // The opcode is the first byte of the encoding.
            seen.insert(gen::request(&mut rng).to_wire()[0]);
        }
        assert_eq!(seen.len(), Request::COUNT, "generator misses opcodes");
    }

    #[test]
    fn truncated_input_is_rejected_not_panicking() {
        let mut rng = Rng::new(3);
        for _ in 0..200 {
            let payload = gen::request(&mut rng).to_wire();
            for cut in 0..payload.len() {
                assert!(Request::from_wire(&payload[..cut]).is_err());
            }
        }
    }

    #[test]
    fn seed_corpus_replays_clean() {
        let entries = seed_corpus();
        assert!(entries.len() >= 24);
        for (name, bytes) in &entries {
            corpus::replay(bytes).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn corpus_detects_a_non_canonical_expect_ok_payload() {
        // A canonical-flagged file whose payload is garbage must fail
        // replay — this is what pins decoder regressions.
        let bad = corpus::entry(3, corpus::EXPECT_OK, &[0xEE, 1, 2, 3]);
        assert!(corpus::replay(&bad).is_err());
    }
}
