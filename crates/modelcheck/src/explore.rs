//! Bounded explicit-state exploration (TLC-style) of the server model.
//!
//! The checker enumerates action sequences breadth-first from each seed
//! topology. [`Core`] is deliberately not `Clone` (it owns hardware and
//! channel state), so a state is *identified* by its canonical
//! [`fingerprint`] and *reconstructed* by replaying its trace from the
//! seed — sound because dispatch and the engine are deterministic
//! (virtual pacing, no wall-clock in the model path).
//!
//! The oracle, run after every transition:
//!
//! - every structural invariant of [`da_server::validate`] (V1–V13);
//! - **T1 (frozen queues, paper §5.5)**: a queue that was not `Started`
//!   before an engine tick is byte-identical after it — state,
//!   queue-relative time, pending depth and entry cursor all unchanged
//!   ("when a queue is paused, command queue relative time is
//!   suspended"; a stopped queue is equally inert).
//!
//! `CoBegin` depth returning to zero on drain and the active stack never
//! referencing a destroyed root are structural (V12 and V5/V11) and so
//! are re-checked on *every* action, not just ticks.
//!
//! A violating trace is shrunk by greedy single-deletion to a local
//! minimum and pretty-printed as a replayable regression test.

use crate::world::{Action, Seed, World};
use da_proto::codec::WireWrite;
use da_proto::types::QueueState;
use da_server::core::Core;
use da_server::queue::{CmdState, QNode, RunNode};
use da_server::validate;
use std::collections::{HashSet, VecDeque};
use std::fmt;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Canonical state fingerprint
// ---------------------------------------------------------------------------

/// FNV-1a accumulator over a canonical serialization of the state
/// vector.
struct Fp(u64);

impl Fp {
    fn new() -> Fp {
        Fp(0xcbf2_9ce4_8422_2325)
    }

    fn u8(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(0x100_0000_01b3);
    }

    fn u32(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.u8(b);
        }
    }

    fn bytes(&mut self, bs: &[u8]) {
        self.u32(bs.len() as u32);
        for &b in bs {
            self.u8(b);
        }
    }
}

fn queue_state_tag(s: QueueState) -> u8 {
    match s {
        QueueState::Started => 0,
        QueueState::Stopped => 1,
        QueueState::ClientPaused => 2,
        QueueState::ServerPaused => 3,
    }
}

fn hash_qnode(fp: &mut Fp, n: &QNode) {
    match n {
        QNode::Cmd { vdev, cmd, .. } => {
            // The lifetime `index` is monotonic bookkeeping, not state:
            // including it would make logically identical queues hash
            // apart after any earlier traffic.
            fp.u8(0);
            fp.u32(vdev.0);
            fp.bytes(&cmd.to_wire());
        }
        QNode::Par(children) => {
            fp.u8(1);
            fp.u32(children.len() as u32);
            for c in children {
                hash_qnode(fp, c);
            }
        }
        QNode::DelaySeg { ms, body } => {
            fp.u8(2);
            fp.u32(*ms);
            fp.u32(body.len() as u32);
            for c in body {
                hash_qnode(fp, c);
            }
        }
    }
}

fn hash_runnode(fp: &mut Fp, n: &RunNode) {
    match n {
        RunNode::Cmd { vdev, cmd, state, .. } => {
            fp.u8(0);
            fp.u32(vdev.0);
            fp.bytes(&cmd.to_wire());
            fp.u8(match state {
                CmdState::Waiting => 0,
                CmdState::Running => 1,
                CmdState::Done => 2,
            });
        }
        RunNode::Par { children } => {
            fp.u8(1);
            fp.u32(children.len() as u32);
            for c in children {
                hash_runnode(fp, c);
            }
        }
        RunNode::Delay { remaining, body, current } => {
            fp.u8(2);
            // The countdown itself is a monotone counter; only its
            // exhaustion changes what the engine will do next.
            fp.u8(u8::from(*remaining == 0));
            fp.u32(body.len() as u32);
            for c in body {
                hash_qnode(fp, c);
            }
            fp.u8(u8::from(current.is_some()));
            if let Some(c) = current {
                hash_runnode(fp, c);
            }
        }
    }
}

/// Canonical 64-bit fingerprint of the protocol-visible state vector.
///
/// Includes: LOUD forest shape, queue contents and state, virtual
/// devices (class, attributes, bindings, gain, pause/op flags), wires,
/// the active stack and manager worklists. Excludes every unbounded
/// monotone counter (`device_time`, `tick_index`, queue entry cursors,
/// telemetry) — with those included no two ticks would ever dedup and
/// bounded exploration would degenerate into a random walk.
pub fn fingerprint(core: &Core) -> u64 {
    let mut fp = Fp::new();

    let mut client_ids: Vec<u32> = core.clients.keys().copied().collect();
    client_ids.sort_unstable();
    fp.u32(client_ids.len() as u32);
    for id in client_ids {
        fp.u32(id);
        fp.u32(core.clients[&id].selections.len() as u32);
    }

    let mut loud_ids: Vec<u32> = core.louds.keys().copied().collect();
    loud_ids.sort_unstable();
    fp.u32(loud_ids.len() as u32);
    for id in loud_ids {
        let l = &core.louds[&id];
        fp.u32(id);
        fp.u32(l.parent.unwrap_or(0));
        let mut kids = l.children.clone();
        kids.sort_unstable();
        for k in kids {
            fp.u32(k);
        }
        fp.u8(u8::from(l.mapped));
        fp.u8(u8::from(l.active));
        match &l.queue {
            None => fp.u8(0),
            Some(q) => {
                fp.u8(1);
                fp.u8(queue_state_tag(q.state()));
                fp.u32(q.pending.len() as u32);
                for n in &q.pending {
                    hash_qnode(&mut fp, n);
                }
                fp.u32(q.raw_entries().len() as u32);
                for e in q.raw_entries() {
                    fp.bytes(&e.to_wire());
                }
                fp.u8(u8::from(q.running.is_some()));
                if let Some(r) = &q.running {
                    hash_runnode(&mut fp, r);
                }
                fp.u32(q.open_depth());
            }
        }
    }

    let mut vdev_ids: Vec<u32> = core.vdevs.keys().copied().collect();
    vdev_ids.sort_unstable();
    fp.u32(vdev_ids.len() as u32);
    for id in vdev_ids {
        let v = &core.vdevs[&id];
        fp.u32(id);
        fp.u32(v.loud);
        fp.u32(v.root);
        fp.bytes(&v.class.to_wire());
        fp.u32(v.attrs.len() as u32);
        for a in &v.attrs {
            fp.bytes(&a.to_wire());
        }
        fp.u32(v.gain_milli);
        match v.binding {
            None => fp.u8(0),
            Some(da_server::vdevice::HwBinding::Speaker(i)) => {
                fp.u8(1);
                fp.u32(i as u32);
            }
            Some(da_server::vdevice::HwBinding::Microphone(i)) => {
                fp.u8(2);
                fp.u32(i as u32);
            }
            Some(da_server::vdevice::HwBinding::Line(_)) => fp.u8(3),
            Some(da_server::vdevice::HwBinding::Software) => fp.u8(4),
        }
        fp.u32(v.rate);
        fp.u32(v.sync_interval);
        fp.u8(u8::from(v.paused));
        fp.u8(u8::from(v.op.is_some()));
        fp.u8(u8::from(v.abort_op));
    }

    let mut wire_ids: Vec<u32> = core.wires.keys().copied().collect();
    wire_ids.sort_unstable();
    fp.u32(wire_ids.len() as u32);
    for id in wire_ids {
        let w = &core.wires[&id];
        fp.u32(id);
        fp.u32(w.src.0);
        fp.u8(w.src_port);
        fp.u32(w.dst.0);
        fp.u8(w.dst_port);
        fp.bytes(&w.wire_type.to_wire());
    }

    fp.u32(core.sounds.len() as u32);
    fp.u32(core.active_stack.len() as u32);
    for &r in &core.active_stack {
        fp.u32(r);
    }
    for list in [&core.pending_maps, &core.pending_raises, &core.queue_failures] {
        fp.u32(list.len() as u32);
        for &r in list {
            fp.u32(r);
        }
    }
    fp.u32(core.redirect_client.unwrap_or(0));
    fp.0
}

// ---------------------------------------------------------------------------
// Oracle
// ---------------------------------------------------------------------------

/// One violated invariant, structural or temporal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Breach {
    /// Catalog identifier: `V1`..`V13` (structural, DESIGN.md §9) or
    /// `T1` (temporal, DESIGN.md §11).
    pub invariant: String,
    /// What exactly went wrong.
    pub detail: String,
}

impl fmt::Display for Breach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.invariant, self.detail)
    }
}

/// A deliberately broken engine, for proving the checker catches real
/// bugs (the "comment out a guard" fixture of the self-tests and CI
/// smoke run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The engine behaves as written.
    None,
    /// Simulates losing the §5.5 guard that exempts non-`Started` queues
    /// from stepping: after every tick, each `ServerPaused` queue is
    /// advanced (relative time bumped, a pending node consumed) exactly
    /// as if the engine had stepped it. Violates T1 and nothing
    /// structural.
    AdvanceServerPaused,
}

/// Applies one action *without* oracle checks (prefix replay), injecting
/// the fault after ticks so faulted replays reproduce faulted runs.
fn replay_action(w: &mut World, action: Action, fault: Fault) {
    w.apply(action);
    if action == Action::Tick && fault == Fault::AdvanceServerPaused {
        for l in w.core.louds.values_mut() {
            if let Some(q) = &mut l.queue {
                if q.state() == QueueState::ServerPaused {
                    q.relative_frames += 80;
                    q.pending.pop_front();
                }
            }
        }
    }
}

/// Applies one action and runs the full oracle, returning every breach.
fn apply_checked(w: &mut World, action: Action, fault: Fault) -> Vec<Breach> {
    let pre = if action == Action::Tick { Some(w.queue_snapshot()) } else { None };
    replay_action(w, action, fault);
    let mut out: Vec<Breach> = validate::check_all(&w.core)
        .into_iter()
        .map(|v| Breach { invariant: v.invariant.to_string(), detail: v.detail })
        .collect();
    if let Some(pre) = pre {
        let post = w.queue_snapshot();
        for &(root, state, rel, pending, cursor) in &pre {
            if state == QueueState::Started {
                continue;
            }
            match post.iter().find(|p| p.0 == root) {
                None => out.push(Breach {
                    invariant: "T1".into(),
                    detail: format!("queue of root {root} vanished during a tick"),
                }),
                Some(&(_, s2, rel2, pending2, cursor2)) => {
                    if (s2, rel2, pending2, cursor2) != (state, rel, pending, cursor) {
                        out.push(Breach {
                            invariant: "T1".into(),
                            detail: format!(
                                "{state:?} queue of root {root} advanced during a tick: \
                                 state {state:?}->{s2:?}, relative_frames {rel}->{rel2}, \
                                 pending {pending}->{pending2}, cursor {cursor}->{cursor2}"
                            ),
                        });
                    }
                }
            }
        }
    }
    out
}

/// Replays a trace from a seed with the full oracle at every step.
///
/// Returns the final world and the first step's breaches, if any (the
/// step index is in [`TraceBreach`]). Regression tests pin a
/// counterexample by asserting on the returned breaches.
pub fn replay(seed: Seed, fault: Fault, trace: &[Action]) -> (World, Option<TraceBreach>) {
    let mut w = World::new(seed);
    for (i, &a) in trace.iter().enumerate() {
        let breaches = apply_checked(&mut w, a, fault);
        if !breaches.is_empty() {
            return (w, Some(TraceBreach { step: i, breaches }));
        }
    }
    (w, None)
}

/// The first violating step of a replayed trace.
#[derive(Debug, Clone)]
pub struct TraceBreach {
    /// Index into the trace of the violating action.
    pub step: usize,
    /// Everything the oracle reported after that action.
    pub breaches: Vec<Breach>,
}

// ---------------------------------------------------------------------------
// Search
// ---------------------------------------------------------------------------

/// Exploration budgets and fixtures.
#[derive(Debug, Clone)]
pub struct Config {
    /// Seeds to explore (each gets an equal share of `max_states`).
    pub seeds: Vec<Seed>,
    /// Maximum trace length.
    pub max_depth: usize,
    /// Total deduplicated-state budget across all seeds.
    pub max_states: usize,
    /// Fault injection (CI runs `Fault::None`; the self-test proves the
    /// broken fixture is caught).
    pub fault: Fault,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            seeds: Seed::ALL.to_vec(),
            max_depth: 64,
            max_states: 50_000,
            fault: Fault::None,
        }
    }
}

/// A minimized violating trace, ready to print or replay.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Seed topology the trace starts from.
    pub seed: Seed,
    /// Identifier of the violated invariant.
    pub invariant: String,
    /// Violation detail from the oracle.
    pub detail: String,
    /// Minimized action sequence.
    pub trace: Vec<Action>,
}

impl Counterexample {
    /// Renders the counterexample as a human-readable report whose tail
    /// is a paste-ready regression test.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "counterexample in seed `{}` — violates {}\n  {}\n\ntrace ({} actions):\n",
            self.seed.name(),
            self.invariant,
            self.detail,
            self.trace.len()
        ));
        for (i, a) in self.trace.iter().enumerate() {
            s.push_str(&format!("  {:>3}. {a:?}\n", i + 1));
        }
        s.push_str("\nreplay as a test:\n");
        s.push_str("    use da_modelcheck::{explore, Action, Fault, Root, Seed};\n");
        s.push_str(&format!(
            "    let (_, breach) = explore::replay(Seed::{:?}, Fault::None, &[\n",
            self.seed
        ));
        for a in &self.trace {
            s.push_str(&format!("        Action::{a:?},\n"));
        }
        s.push_str("    ]);\n");
        s.push_str(&format!(
            "    assert!(breach.is_some(), \"expected a {} violation\");\n",
            self.invariant
        ));
        s
    }
}

/// Per-seed exploration statistics.
#[derive(Debug, Clone)]
pub struct SeedRun {
    /// The seed explored.
    pub seed: Seed,
    /// Deduplicated states visited (including the seed state).
    pub states: usize,
    /// Transitions expanded with the full oracle.
    pub transitions: u64,
    /// Total actions applied, including prefix replays (the real work
    /// figure for throughput).
    pub replayed_actions: u64,
    /// Deepest trace expanded.
    pub depth_reached: usize,
    /// First violation found, minimized. Exploration of this seed stops
    /// at the first violation.
    pub counterexample: Option<Counterexample>,
}

/// Aggregate result of [`explore`].
#[derive(Debug, Clone)]
pub struct Report {
    /// Per-seed breakdown.
    pub seeds: Vec<SeedRun>,
    /// Wall time of the whole exploration.
    pub elapsed: Duration,
}

impl Report {
    /// Total deduplicated states across seeds.
    pub fn states(&self) -> usize {
        self.seeds.iter().map(|s| s.states).sum()
    }

    /// Total oracle-checked transitions.
    pub fn transitions(&self) -> u64 {
        self.seeds.iter().map(|s| s.transitions).sum()
    }

    /// Total applied actions including replays.
    pub fn replayed_actions(&self) -> u64 {
        self.seeds.iter().map(|s| s.replayed_actions).sum()
    }

    /// All counterexamples (at most one per seed).
    pub fn counterexamples(&self) -> Vec<&Counterexample> {
        self.seeds.iter().filter_map(|s| s.counterexample.as_ref()).collect()
    }

    /// States per second of wall time.
    pub fn states_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.states() as f64 / secs
        } else {
            0.0
        }
    }
}

/// Runs bounded BFS exploration over every seed in the config.
pub fn explore(cfg: &Config) -> Report {
    let started = Instant::now();
    let per_seed = cfg.max_states.div_ceil(cfg.seeds.len().max(1)).max(1);
    let seeds = cfg
        .seeds
        .iter()
        .map(|&seed| explore_seed(seed, per_seed, cfg.max_depth, cfg.fault))
        .collect();
    Report { seeds, elapsed: started.elapsed() }
}

fn explore_seed(seed: Seed, max_states: usize, max_depth: usize, fault: Fault) -> SeedRun {
    let alphabet = World::alphabet(seed);
    let mut run = SeedRun {
        seed,
        states: 0,
        transitions: 0,
        replayed_actions: 0,
        depth_reached: 0,
        counterexample: None,
    };

    let mut visited: HashSet<u64> = HashSet::new();
    let mut frontier: VecDeque<Vec<Action>> = VecDeque::new();
    let root = World::new(seed);
    visited.insert(fingerprint(&root.core));
    run.states = 1;
    frontier.push_back(Vec::new());

    'search: while let Some(trace) = frontier.pop_front() {
        if trace.len() >= max_depth {
            continue;
        }
        for &action in &alphabet {
            if run.states >= max_states {
                break 'search;
            }
            // Rebuild the predecessor by replay (Core is not Clone), then
            // take the candidate transition under the full oracle.
            let mut w = World::new(seed);
            for &p in &trace {
                replay_action(&mut w, p, fault);
            }
            run.replayed_actions += trace.len() as u64 + 1;
            let breaches = apply_checked(&mut w, action, fault);
            run.transitions += 1;
            if let Some(b) = breaches.first() {
                let mut full = trace.clone();
                full.push(action);
                let minimized = minimize(seed, fault, full, &b.invariant);
                let (_, tb) = replay(seed, fault, &minimized);
                let detail = tb
                    .and_then(|t| t.breaches.into_iter().next())
                    .map_or_else(|| b.detail.clone(), |b| b.detail);
                run.counterexample = Some(Counterexample {
                    seed,
                    invariant: b.invariant.clone(),
                    detail,
                    trace: minimized,
                });
                break 'search;
            }
            let h = fingerprint(&w.core);
            if visited.insert(h) {
                run.states += 1;
                let mut next = trace.clone();
                next.push(action);
                run.depth_reached = run.depth_reached.max(next.len());
                frontier.push_back(next);
            }
        }
    }
    run
}

/// Greedy single-deletion shrinking: drop any action whose removal
/// preserves a violation of the same invariant, until no single deletion
/// does. Also truncates past the first violating step.
fn minimize(seed: Seed, fault: Fault, mut trace: Vec<Action>, invariant: &str) -> Vec<Action> {
    let violates = |t: &[Action]| -> Option<usize> {
        let (_, tb) = replay(seed, fault, t);
        let tb = tb?;
        tb.breaches.iter().any(|b| b.invariant == invariant).then_some(tb.step)
    };
    if let Some(step) = violates(&trace) {
        trace.truncate(step + 1);
    }
    loop {
        let mut improved = false;
        for i in 0..trace.len() {
            let mut cand = trace.clone();
            cand.remove(i);
            if let Some(step) = violates(&cand) {
                cand.truncate(step + 1);
                trace = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            return trace;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::Root;

    #[test]
    fn small_clean_exploration_finds_no_violations() {
        let report = explore(&Config {
            seeds: vec![Seed::Solo],
            max_depth: 8,
            max_states: 300,
            fault: Fault::None,
        });
        assert!(report.counterexamples().is_empty(), "{:?}", report.counterexamples());
        assert_eq!(report.states(), 300, "state space exhausted before the budget");
        assert!(report.transitions() >= 300);
    }

    #[test]
    fn fingerprint_distinguishes_queue_states_but_not_tick_count() {
        let mut a = World::new(Seed::Solo);
        let mut b = World::new(Seed::Solo);
        assert_eq!(fingerprint(&a.core), fingerprint(&b.core));
        // Ticking an idle world moves only monotone counters.
        b.apply(Action::Tick);
        assert_eq!(fingerprint(&a.core), fingerprint(&b.core));
        // A queue-state change is visible.
        a.apply(Action::Start(Root::A));
        assert_ne!(fingerprint(&a.core), fingerprint(&b.core));
    }

    /// The acceptance fixture: a deliberately broken engine (the §5.5
    /// "don't step non-Started queues" guard gone) must produce a
    /// minimized, human-readable counterexample.
    #[test]
    fn broken_fixture_yields_minimized_counterexample() {
        let report = explore(&Config {
            seeds: vec![Seed::Solo],
            max_depth: 6,
            max_states: 10_000,
            fault: Fault::AdvanceServerPaused,
        });
        let cxs = report.counterexamples();
        assert_eq!(cxs.len(), 1, "fault not detected");
        let cx = cxs[0];
        assert_eq!(cx.invariant, "T1");
        // BFS finds a shortest trace; the known minimum is
        // Start, Unmap (server pause), Tick (faulty advance).
        assert_eq!(
            cx.trace,
            vec![Action::Start(Root::A), Action::Unmap(Root::A), Action::Tick],
            "not minimal: {:?}",
            cx.trace
        );
        let rendered = cx.render();
        assert!(rendered.contains("violates T1"), "{rendered}");
        assert!(rendered.contains("Action::Tick"), "{rendered}");
        assert!(rendered.contains("explore::replay(Seed::Solo"), "{rendered}");
    }

    /// Shrinking strips actions that do not contribute to the breach.
    #[test]
    fn minimization_removes_irrelevant_actions() {
        let bloated = vec![
            Action::EnqueuePlay(Root::A),
            Action::Start(Root::A),
            Action::Flush(Root::A),
            Action::Raise(Root::A),
            Action::Unmap(Root::A),
            Action::Tick,
            Action::Tick,
        ];
        let minimized =
            minimize(Seed::Solo, Fault::AdvanceServerPaused, bloated, "T1");
        assert_eq!(
            minimized,
            vec![Action::Start(Root::A), Action::Unmap(Root::A), Action::Tick]
        );
    }

    #[test]
    fn replay_reports_clean_traces_as_clean() {
        let (_, breach) = replay(
            Seed::Solo,
            Fault::None,
            &[Action::Start(Root::A), Action::Unmap(Root::A), Action::Tick],
        );
        assert!(breach.is_none(), "{breach:?}");
    }
}
