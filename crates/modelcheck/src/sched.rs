//! Deterministic interleaving exploration of the sharded connection
//! plane (loom-style, dependency-free).
//!
//! The real connection plane runs fast-path dispatchers under
//! `core.read()` + one stripe, slow-path writers and the reaper under
//! `core.write()`, and the engine tick under `core.write()` — with the
//! `ShardedMap` aliasing protocol (DESIGN.md §14) keeping the
//! `UnsafeCell` shards sound. Thread timing cannot be enumerated in a
//! real process, so this module models those threads as **actors**:
//! straight-line scripts of lock/shard [`Op`]s around real [`World`]
//! actions. A schedule-controlled lock shim ([`Op::CoreWrite`] is
//! enabled only when *no* reader holds the core lock — including the
//! acquiring actor itself, which is exactly parking_lot's non-upgradable
//! `RwLock`) replaces the OS scheduler, and a DFS over every scheduling
//! choice point explores distinct interleavings up to a budget.
//!
//! The oracle, checked at every step:
//!
//! - **A1** — two live exclusive `shard_mut` views of the same shard
//!   (the overlap the debug borrow sanitizer panics on at runtime);
//! - **A2** — a shared shard read while another actor's exclusive view
//!   of that shard is live (mut-while-shared);
//! - **A3** — an exclusive view taken off-protocol: without the core
//!   lock, or in read mode without *some* stripe held (deliberately not
//!   "the right stripe" — that is what makes the [`SchedFault`]
//!   `WrongStripe` fixture interleaving-dependent rather than a static
//!   error);
//! - **D1** — deadlock: every unfinished actor blocked;
//! - **V1–V13** — the full [`da_server::validate`] structural oracle
//!   after every applied [`Action`].
//!
//! A breaching schedule is shrunk by greedy single-deletion (replay
//! treats entries for finished or blocked actors as no-ops, so deletion
//! is always meaningful) and rendered as a paste-ready regression test,
//! mirroring [`crate::explore`].

use crate::world::{Action, Root, Seed, World};
use crate::Rng;
use da_server::validate;
use std::collections::HashSet;
use std::fmt;

/// Stripes/shards in the modeled plane (the real default is larger; 4
/// keeps the state space dense in interesting collisions).
const N_SHARDS: usize = 4;

/// One step of an actor's script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Acquire the core lock in read mode (blocks on a writer).
    CoreRead,
    /// Acquire the core lock in write mode (blocks on any reader —
    /// including this actor's own read guard — or writer).
    CoreWrite,
    /// Release whichever core guard this actor holds.
    CoreUnlock,
    /// Acquire stripe `s` (blocks while held by anyone).
    Stripe(usize),
    /// Release stripe `s`.
    StripeUnlock(usize),
    /// Open an exclusive `shard_mut` view of shard `s` (checked by
    /// A1/A3).
    ShardMutBegin(usize),
    /// Drop the exclusive view of shard `s`.
    ShardMutEnd(usize),
    /// A shared `&Core` read of shard `s` (checked by A2).
    ShardRead(usize),
    /// Apply a real [`World`] action (checked by V1–V13).
    Apply(Action),
}

/// A modeled connection-plane thread: a name and a straight-line script.
#[derive(Debug, Clone)]
pub struct Actor {
    /// Display name (`fast-a`, `slow-writer`, ...).
    pub name: &'static str,
    /// The ops, executed in order, one per scheduling step.
    pub ops: Vec<Op>,
}

/// Seeded protocol violations, for proving the explorer catches real
/// interleaving bugs (the repo's broken-fixture convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedFault {
    /// The plane as designed: every interleaving must be green.
    None,
    /// A second fast-path dispatcher locks the *wrong* stripe for the
    /// shard it views — still protocol-shaped (A3 passes: core read +
    /// a stripe), but its exclusive view can overlap `fast-a`'s in some
    /// interleavings (A1) while serialized interleavings stay green.
    WrongStripe,
    /// The slow-path writer tries to upgrade its own core read guard to
    /// a write guard, the classic non-upgradable-RwLock self-deadlock
    /// (D1) the mode-aware lock-order lint flags statically.
    ReadUpgrade,
}

impl SchedFault {
    /// Stable name for CLI flags and reports.
    pub fn name(self) -> &'static str {
        match self {
            SchedFault::None => "none",
            SchedFault::WrongStripe => "wrong-stripe",
            SchedFault::ReadUpgrade => "read-upgrade",
        }
    }
}

/// The modeled actors for a fault. Shard 1 is the contended shard: the
/// fast path views it, the slow path reads it under the write lock.
pub fn actors(fault: SchedFault) -> Vec<Actor> {
    let fast = |name, stripe, shard, action| Actor {
        name,
        ops: vec![
            Op::CoreRead,
            Op::Stripe(stripe),
            Op::ShardMutBegin(shard),
            Op::Apply(action),
            Op::ShardMutEnd(shard),
            Op::StripeUnlock(stripe),
            Op::CoreUnlock,
        ],
    };
    let slow_writer = |upgrade: bool| {
        let mut ops = Vec::new();
        if upgrade {
            ops.push(Op::CoreRead);
        }
        ops.extend([
            Op::CoreWrite,
            Op::ShardRead(1),
            Op::Apply(Action::Map(Root::A)),
            Op::CoreUnlock,
        ]);
        Actor { name: "slow-writer", ops }
    };
    let reaper = Actor {
        name: "reaper",
        ops: vec![Op::CoreWrite, Op::Apply(Action::DisconnectManager), Op::CoreUnlock],
    };
    let tick = Actor {
        name: "engine-tick",
        ops: vec![Op::CoreWrite, Op::Apply(Action::Tick), Op::CoreUnlock],
    };
    match fault {
        // Two concurrent fast-path readers on *different* shards: their
        // critical sections overlap freely (readers don't exclude each
        // other), which is where the interleaving count comes from —
        // writer sections are atomic under the shim, exactly as the
        // real write lock serializes them.
        SchedFault::None => vec![
            fast("fast-a", 1, 1, Action::EnqueuePlay(Root::A)),
            fast("fast-b", 2, 2, Action::EnqueueGroup(Root::A)),
            slow_writer(false),
            reaper,
            tick,
        ],
        SchedFault::WrongStripe => vec![
            fast("fast-a", 1, 1, Action::EnqueuePlay(Root::A)),
            // Stripe 2 for a shard-1 view: the bug the stripe protocol
            // exists to prevent.
            fast("fast-b", 2, 1, Action::EnqueueGroup(Root::A)),
            slow_writer(false),
            tick,
        ],
        SchedFault::ReadUpgrade => vec![
            fast("fast-a", 1, 1, Action::EnqueuePlay(Root::A)),
            slow_writer(true),
            reaper,
            tick,
        ],
    }
}

/// One violated oracle in a scheduled run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedBreach {
    /// `A1`/`A2`/`A3`, `D1`, or a `V*` identifier from the validate
    /// catalog.
    pub oracle: String,
    /// What exactly went wrong.
    pub detail: String,
    /// Schedule entries consumed when the breach fired (breaches in the
    /// run-to-completion tail report the full schedule length).
    pub sched_pos: usize,
}

impl fmt::Display for SchedBreach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.oracle, self.detail)
    }
}

// ---------------------------------------------------------------------------
// The simulated plane
// ---------------------------------------------------------------------------

/// Lock shim + live-view registry + real world state for one run.
struct Sim {
    world: World,
    actors: Vec<Actor>,
    /// Next op index per actor.
    pc: Vec<usize>,
    core_readers: Vec<bool>,
    core_writer: Option<usize>,
    stripes: [Option<usize>; N_SHARDS],
    shard_mut: [Option<usize>; N_SHARDS],
}

impl Sim {
    fn new(fault: SchedFault) -> Sim {
        Sim::with_actors(actors(fault))
    }

    fn with_actors(actors: Vec<Actor>) -> Sim {
        let n = actors.len();
        Sim {
            world: World::new(Seed::Manager),
            actors,
            pc: vec![0; n],
            core_readers: vec![false; n],
            core_writer: None,
            stripes: [None; N_SHARDS],
            shard_mut: [None; N_SHARDS],
        }
    }

    fn next_op(&self, a: usize) -> Option<Op> {
        self.actors[a].ops.get(self.pc[a]).copied()
    }

    fn all_finished(&self) -> bool {
        (0..self.actors.len()).all(|a| self.next_op(a).is_none())
    }

    /// Can actor `a` take its next op right now?
    fn op_enabled(&self, a: usize) -> bool {
        match self.next_op(a) {
            None => false,
            Some(Op::CoreRead) => self.core_writer.is_none(),
            Some(Op::CoreWrite) => {
                self.core_writer.is_none() && !self.core_readers.iter().any(|&r| r)
            }
            Some(Op::Stripe(s)) => self.stripes[s].is_none(),
            Some(_) => true,
        }
    }

    fn enabled_set(&self) -> Vec<usize> {
        (0..self.actors.len()).filter(|&a| self.op_enabled(a)).collect()
    }

    /// Executes actor `a`'s next op (must be enabled) and returns every
    /// oracle breach it triggers.
    fn step(&mut self, a: usize) -> Vec<(String, String)> {
        let op = self.next_op(a).expect("stepped a finished actor");
        debug_assert!(self.op_enabled(a), "stepped a blocked actor");
        self.pc[a] += 1;
        let name = self.actors[a].name;
        let mut out = Vec::new();
        match op {
            Op::CoreRead => self.core_readers[a] = true,
            Op::CoreWrite => self.core_writer = Some(a),
            Op::CoreUnlock => {
                if self.core_writer == Some(a) {
                    self.core_writer = None;
                } else {
                    self.core_readers[a] = false;
                }
            }
            Op::Stripe(s) => self.stripes[s] = Some(a),
            Op::StripeUnlock(s) => self.stripes[s] = None,
            Op::ShardMutBegin(s) => {
                if let Some(holder) = self.shard_mut[s] {
                    out.push((
                        "A1".to_string(),
                        format!(
                            "{name} opened an exclusive view of shard {s} while \
                             {}'s view is live (overlapping &mut)",
                            self.actors[holder].name,
                        ),
                    ));
                }
                let holds_core =
                    self.core_writer == Some(a) || self.core_readers[a];
                let holds_a_stripe = self.stripes.contains(&Some(a));
                if !holds_core || (self.core_writer != Some(a) && !holds_a_stripe) {
                    out.push((
                        "A3".to_string(),
                        format!(
                            "{name} opened an exclusive view of shard {s} off-protocol \
                             (needs the core lock, and in read mode a stripe)",
                        ),
                    ));
                }
                self.shard_mut[s] = Some(a);
            }
            Op::ShardMutEnd(s) => self.shard_mut[s] = None,
            Op::ShardRead(s) => {
                if let Some(holder) = self.shard_mut[s] {
                    if holder != a {
                        out.push((
                            "A2".to_string(),
                            format!(
                                "{name} read shard {s} while {}'s exclusive view is \
                                 live (mut-while-shared)",
                                self.actors[holder].name,
                            ),
                        ));
                    }
                }
            }
            Op::Apply(action) => {
                self.world.apply(action);
                out.extend(
                    validate::check_all(&self.world.core)
                        .into_iter()
                        .map(|v| (v.invariant.to_string(), v.detail)),
                );
            }
        }
        out
    }

    /// Human-readable account of a deadlock: every unfinished actor and
    /// what it is blocked on.
    fn describe_blocked(&self) -> String {
        let parts: Vec<String> = (0..self.actors.len())
            .filter_map(|a| {
                let op = self.next_op(a)?;
                let upgrade = op == Op::CoreWrite && self.core_readers[a];
                Some(format!(
                    "{} blocked at {op:?}{}",
                    self.actors[a].name,
                    if upgrade {
                        " while holding its own core read guard (read->write upgrade)"
                    } else {
                        ""
                    },
                ))
            })
            .collect();
        format!("deadlock: {}", parts.join("; "))
    }
}

// ---------------------------------------------------------------------------
// Replay and exploration
// ---------------------------------------------------------------------------

/// Replays a schedule (absolute actor indices). Entries for finished,
/// blocked, or out-of-range actors are no-ops; after the schedule is
/// consumed the run is completed serially (always the lowest-indexed
/// enabled actor — a serializing tail, so the empty schedule is green
/// for every fault except an unconditional deadlock). Returns the first
/// breach, if any.
pub fn replay(fault: SchedFault, schedule: &[usize]) -> Option<SchedBreach> {
    replay_actors(Sim::new(fault), schedule)
}

fn replay_actors(mut sim: Sim, schedule: &[usize]) -> Option<SchedBreach> {
    for (i, &a) in schedule.iter().enumerate() {
        if a >= sim.actors.len() || !sim.op_enabled(a) {
            continue;
        }
        if let Some((oracle, detail)) = sim.step(a).into_iter().next() {
            return Some(SchedBreach { oracle, detail, sched_pos: i + 1 });
        }
    }
    loop {
        match sim.enabled_set().first().copied() {
            Some(a) => {
                if let Some((oracle, detail)) = sim.step(a).into_iter().next() {
                    return Some(SchedBreach {
                        oracle,
                        detail,
                        sched_pos: schedule.len(),
                    });
                }
            }
            None if sim.all_finished() => return None,
            None => {
                return Some(SchedBreach {
                    oracle: "D1".to_string(),
                    detail: sim.describe_blocked(),
                    sched_pos: schedule.len(),
                })
            }
        }
    }
}

/// Exploration budgets.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Seeded protocol violation (CI runs `None`; self-tests prove the
    /// broken fixtures are caught).
    pub fault: SchedFault,
    /// Distinct interleavings to execute (duplicate random walks are
    /// deduplicated and retried, up to 4× the budget in attempts).
    pub budget: usize,
    /// PRNG seed driving the scheduling choices; a fixed seed makes the
    /// whole exploration reproducible.
    pub seed: u64,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig { fault: SchedFault::None, budget: 2_000, seed: 0 }
    }
}

/// A minimized breaching schedule, ready to print or replay.
#[derive(Debug, Clone)]
pub struct SchedCx {
    /// The fault the model ran under.
    pub fault: SchedFault,
    /// Identifier of the violated oracle.
    pub oracle: String,
    /// Violation detail.
    pub detail: String,
    /// Minimized schedule (absolute actor indices).
    pub schedule: Vec<usize>,
    /// Actor names, indexable by schedule entries.
    pub actors: Vec<&'static str>,
}

impl SchedCx {
    /// Renders the counterexample with a paste-ready regression test.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "interleaving counterexample under fault `{}` — violates {}\n  {}\n\n\
             schedule ({} step(s); actors: {}):\n",
            self.fault.name(),
            self.oracle,
            self.detail,
            self.schedule.len(),
            self.actors.join(", "),
        ));
        for (i, &a) in self.schedule.iter().enumerate() {
            s.push_str(&format!("  {:>3}. {}\n", i + 1, self.actors[a]));
        }
        s.push_str("\nreplay as a test:\n");
        s.push_str("    use da_modelcheck::sched::{replay, SchedFault};\n");
        s.push_str(&format!(
            "    let breach = replay(SchedFault::{:?}, &{:?}).expect(\"breach\");\n",
            self.fault, self.schedule,
        ));
        s.push_str(&format!("    assert_eq!(breach.oracle, {:?});\n", self.oracle));
        s
    }
}

/// Result of [`explore_interleavings`].
#[derive(Debug, Clone)]
pub struct SchedReport {
    /// Distinct complete interleavings executed.
    pub interleavings: u64,
    /// Longest schedule executed.
    pub deepest: usize,
    /// First breach found, minimized. Exploration stops on it.
    pub counterexample: Option<SchedCx>,
}

/// Seeded random-walk exploration with schedule deduplication: each run
/// picks uniformly among the enabled actors at every step (re-executing
/// from the seed world — the `Sim` is cheap and `Core` is not `Clone`,
/// mirroring [`crate::explore`]), and a `HashSet` of executed schedules
/// counts *distinct* interleavings. Random walks, unlike a DFS choice
/// stack, vary early and late scheduling decisions alike — which is
/// what surfaces window-overlap bugs whose trigger sits near the front
/// of the schedule. Exploration stops at the budget, the first breach,
/// or the attempt cap.
pub fn explore_interleavings(cfg: &SchedConfig) -> SchedReport {
    let names: Vec<&'static str> = actors(cfg.fault).iter().map(|a| a.name).collect();
    let mut report = SchedReport { interleavings: 0, deepest: 0, counterexample: None };
    let mut rng = Rng::new(cfg.seed);
    let mut seen: HashSet<Vec<usize>> = HashSet::new();
    let max_attempts = cfg.budget.saturating_mul(4).max(1);
    let mut attempts = 0usize;
    while seen.len() < cfg.budget && attempts < max_attempts {
        attempts += 1;
        let mut sim = Sim::new(cfg.fault);
        let mut schedule: Vec<usize> = Vec::new();
        let mut outcome: Option<SchedBreach> = None;
        loop {
            let enabled = sim.enabled_set();
            if enabled.is_empty() {
                if !sim.all_finished() {
                    outcome = Some(SchedBreach {
                        oracle: "D1".to_string(),
                        detail: sim.describe_blocked(),
                        sched_pos: schedule.len(),
                    });
                }
                break;
            }
            let actor = enabled[rng.below(enabled.len() as u64) as usize];
            schedule.push(actor);
            if let Some((oracle, detail)) = sim.step(actor).into_iter().next() {
                outcome =
                    Some(SchedBreach { oracle, detail, sched_pos: schedule.len() });
                break;
            }
        }
        report.deepest = report.deepest.max(schedule.len());
        seen.insert(schedule.clone());
        report.interleavings = seen.len() as u64;
        if let Some(b) = outcome {
            let mut seed_sched = schedule;
            seed_sched.truncate(b.sched_pos);
            let minimized = minimize(cfg.fault, seed_sched, &b.oracle);
            let detail = replay(cfg.fault, &minimized).map_or(b.detail, |r| r.detail);
            report.counterexample = Some(SchedCx {
                fault: cfg.fault,
                oracle: b.oracle,
                detail,
                schedule: minimized,
                actors: names,
            });
            break;
        }
    }
    report
}

/// Greedy single-deletion shrinking against the same oracle, with
/// truncation at the breach position — the [`crate::explore`] minimizer
/// adapted to schedules.
fn minimize(fault: SchedFault, mut schedule: Vec<usize>, oracle: &str) -> Vec<usize> {
    let violates = |s: &[usize]| -> Option<usize> {
        replay(fault, s).filter(|b| b.oracle == oracle).map(|b| b.sched_pos)
    };
    if let Some(p) = violates(&schedule) {
        schedule.truncate(p);
    }
    loop {
        let mut improved = false;
        for i in 0..schedule.len() {
            let mut cand = schedule.clone();
            cand.remove(i);
            if let Some(p) = violates(&cand) {
                cand.truncate(p);
                schedule = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            return schedule;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance bar: the clean model explores well past 1,000
    /// distinct interleavings with every oracle green.
    #[test]
    fn clean_model_explores_many_interleavings() {
        let report = explore_interleavings(&SchedConfig {
            fault: SchedFault::None,
            budget: 1_500,
            seed: 0,
        });
        assert!(report.counterexample.is_none(), "{:?}", report.counterexample);
        assert!(
            report.interleavings >= 1_000,
            "only {} interleavings explored",
            report.interleavings
        );
        assert!(report.deepest >= 16, "runs should schedule every op");
    }

    /// Different seeds walk different schedules and stay green.
    #[test]
    fn seeds_change_order_not_verdict() {
        for seed in [1, 42] {
            let report = explore_interleavings(&SchedConfig {
                fault: SchedFault::None,
                budget: 200,
                seed,
            });
            assert!(report.counterexample.is_none(), "seed {seed}");
            assert!(report.interleavings >= 190, "seed {seed}: {}", report.interleavings);
        }
    }

    /// Broken fixture: the wrong-stripe dispatcher is caught as an A1
    /// aliasing overlap in *some* interleaving, and the schedule shrinks
    /// to a replayable minimum.
    #[test]
    fn wrong_stripe_is_found_and_minimized() {
        let report = explore_interleavings(&SchedConfig {
            fault: SchedFault::WrongStripe,
            budget: 10_000,
            seed: 0,
        });
        let cx = report.counterexample.expect("A1 overlap not found");
        assert_eq!(cx.oracle, "A1", "{}", cx.detail);
        assert!(cx.detail.contains("shard 1"), "{}", cx.detail);
        // Replayable: the minimized schedule still breaches A1.
        let breach = replay(SchedFault::WrongStripe, &cx.schedule).expect("replay");
        assert_eq!(breach.oracle, "A1");
        // Minimal: no single entry can be dropped (and the serializing
        // empty schedule is green, so it is not trivial either).
        assert!(!cx.schedule.is_empty());
        assert!(cx.schedule.len() <= 6, "not shrunk: {:?}", cx.schedule);
        assert!(replay(SchedFault::WrongStripe, &[]).is_none());
        let rendered = cx.render();
        assert!(rendered.contains("violates A1"), "{rendered}");
        assert!(rendered.contains("SchedFault::WrongStripe"), "{rendered}");
    }

    /// Broken fixture: the read→write upgrade deadlocks in every
    /// interleaving; the report names the upgrading actor.
    #[test]
    fn read_upgrade_deadlocks() {
        let report = explore_interleavings(&SchedConfig {
            fault: SchedFault::ReadUpgrade,
            budget: 50,
            seed: 0,
        });
        let cx = report.counterexample.expect("deadlock not found");
        assert_eq!(cx.oracle, "D1");
        assert!(cx.detail.contains("read->write upgrade"), "{}", cx.detail);
        assert!(cx.detail.contains("slow-writer"), "{}", cx.detail);
        let breach = replay(SchedFault::ReadUpgrade, &cx.schedule).expect("replay");
        assert_eq!(breach.oracle, "D1");
    }

    /// A3 guards the protocol itself: a view without the core lock, or
    /// in read mode without a stripe, is flagged at the step it opens.
    #[test]
    fn off_protocol_view_breaches_a3() {
        let rogue = |ops| vec![Actor { name: "rogue", ops }];
        // No core lock at all.
        let b = replay_actors(
            Sim::with_actors(rogue(vec![Op::ShardMutBegin(1), Op::ShardMutEnd(1)])),
            &[],
        )
        .expect("breach");
        assert_eq!(b.oracle, "A3");
        // Read mode without a stripe.
        let b = replay_actors(
            Sim::with_actors(rogue(vec![
                Op::CoreRead,
                Op::ShardMutBegin(1),
                Op::ShardMutEnd(1),
                Op::CoreUnlock,
            ])),
            &[],
        )
        .expect("breach");
        assert_eq!(b.oracle, "A3");
        // Write mode needs no stripe; read mode plus a stripe is the
        // fast-path protocol. Both clean.
        for ops in [
            vec![
                Op::CoreWrite,
                Op::ShardMutBegin(1),
                Op::ShardMutEnd(1),
                Op::CoreUnlock,
            ],
            vec![
                Op::CoreRead,
                Op::Stripe(1),
                Op::ShardMutBegin(1),
                Op::ShardMutEnd(1),
                Op::StripeUnlock(1),
                Op::CoreUnlock,
            ],
        ] {
            assert_eq!(replay_actors(Sim::with_actors(rogue(ops)), &[]), None);
        }
    }

    /// The lock shim models mutual exclusion: a reader blocks the
    /// writer, the writer blocks readers, stripes are non-reentrant.
    #[test]
    fn lock_shim_blocks_conflicting_acquisitions() {
        let sim = Sim::with_actors(vec![
            Actor { name: "r", ops: vec![Op::CoreRead, Op::CoreUnlock] },
            Actor { name: "w", ops: vec![Op::CoreWrite, Op::CoreUnlock] },
        ]);
        let mut sim = sim;
        assert_eq!(sim.enabled_set(), vec![0, 1]);
        assert!(sim.step(0).is_empty());
        // Reader holds: the writer is blocked.
        assert_eq!(sim.enabled_set(), vec![0]);
        assert!(sim.step(0).is_empty());
        assert_eq!(sim.enabled_set(), vec![1]);
    }

    #[test]
    fn empty_schedule_replays_clean_for_the_real_plane() {
        assert_eq!(replay(SchedFault::None, &[]), None);
    }
}
