//! Fault-injected client churn against a live in-process server
//! (`cargo run -p xtask -- soak`).
//!
//! Many short Alib client sessions run a small scripted workload over a
//! [`FaultyDuplex`] transport — short reads, torn frames, byte
//! corruption, delayed writes, and hard mid-stream disconnects, all
//! from per-session seeded plans. The server must ride it out: after
//! every wave of sessions the soak asserts the full validate catalog
//! (V1–V13) over the live core, that a fault-free control connection
//! still gets answers, and that the engine keeps ticking. At the end,
//! every client must be gone from the core (no leaked LOUDs, queues,
//! sounds or selections; DESIGN.md §12).
//!
//! Sessions are deterministic individually (each one's fault schedule
//! comes from `seed` and its index); thread interleaving across a wave
//! is not, which is the point — the checker explores interleavings the
//! bounded model checker's single thread cannot.

use da_alib::{AlibError, Connection};
use da_proto::command::{DeviceCommand, QueueEntry};
use da_proto::event::EventMask;
use da_proto::fault::{FaultKind, FaultPlan, FaultStats, FaultyDuplex};
use da_proto::ids::ResourceId;
use da_proto::types::{DeviceClass, Encoding, SoundType, WireType};
use da_server::core::ServerConfig;
use da_server::server::AudioServer;
use da_server::validate;
use std::sync::Arc;
use std::time::Duration;

/// Soak parameters.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Master seed; session `i` injects faults from plan `seed ⊕ i`.
    pub seed: u64,
    /// Client sessions to run.
    pub sessions: usize,
    /// Sessions running concurrently per wave.
    pub concurrency: usize,
    /// Connection-plane I/O workers for the server under soak.
    pub workers: usize,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig { seed: 0, sessions: 120, concurrency: 8, workers: 4 }
    }
}

/// What the soak observed.
#[derive(Debug, Default)]
pub struct SoakReport {
    /// Sessions attempted.
    pub sessions: usize,
    /// Sessions whose whole workload succeeded despite injected faults.
    pub completed_ok: usize,
    /// Sessions cut short by an injected fault (expected, by design).
    pub died_early: usize,
    /// Total injections per fault kind, in [`FaultKind::ALL`] order.
    pub fault_counts: [u64; 5],
    /// Events the server dropped on full client channels.
    pub events_dropped: u64,
    /// Clients the server evicted as slow.
    pub clients_evicted: u64,
    /// Engine ticks observed across the run (liveness witness).
    pub engine_ticks: u64,
    /// Anything that should have held and did not: validate violations,
    /// a stalled engine, a leaked client, an unresponsive server.
    pub violations: Vec<String>,
    /// Whether the server was built with the `ShardedMap` borrow
    /// sanitizer compiled in (debug builds). CI's debug soak step
    /// requires this, so the aliasing protocol is watched at runtime
    /// while the faults churn.
    pub sanitizer_active: bool,
}

impl SoakReport {
    /// Distinct fault kinds injected at least once.
    pub fn kinds_seen(&self) -> usize {
        self.fault_counts.iter().filter(|&&c| c > 0).count()
    }

    /// Total fault injections.
    pub fn total_faults(&self) -> u64 {
        self.fault_counts.iter().sum()
    }

    /// Whether the run satisfied every property it checks.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs the soak: `sessions` fault-injected clients against one live
/// server, checked wave by wave.
pub fn soak(cfg: &SoakConfig) -> SoakReport {
    let mut report = SoakReport {
        sessions: cfg.sessions,
        sanitizer_active: da_server::shard::sanitizer_active(),
        ..Default::default()
    };
    let server = match AudioServer::start(ServerConfig {
        io_workers: cfg.workers.max(1),
        ..ServerConfig::default()
    }) {
        Ok(s) => s,
        Err(e) => {
            report.violations.push(format!("server failed to start: {e}"));
            return report;
        }
    };
    let control = server.control();
    let ticks_at_start = control.stats().ticks;

    let concurrency = cfg.concurrency.max(1);
    let mut session = 0usize;
    while session < cfg.sessions {
        let wave = concurrency.min(cfg.sessions - session);
        let mut joins = Vec::with_capacity(wave);
        let mut wave_stats: Vec<Arc<FaultStats>> = Vec::with_capacity(wave);
        for i in session..session + wave {
            let plan = FaultPlan::new(cfg.seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
            let (duplex, stats) = FaultyDuplex::wrap(server.connect_pipe(), &plan);
            wave_stats.push(stats);
            joins.push(std::thread::spawn(move || run_session(duplex, i)));
        }
        for j in joins {
            match j.join() {
                Ok(true) => report.completed_ok += 1,
                Ok(false) => report.died_early += 1,
                Err(_) => report.violations.push("session thread panicked".into()),
            }
        }
        for stats in wave_stats {
            for kind in FaultKind::ALL {
                report.fault_counts[kind_slot(kind)] += stats.count(kind);
            }
        }
        session += wave;

        // Every wave's sessions have dropped their connections; their
        // reader threads notice within one poll interval. Wait for the
        // core to empty, then run the whole invariant catalog on it.
        if !control.run_until(Duration::from_secs(5), |c| c.clients.is_empty()) {
            let leaked = control.with_core(|c| c.clients.len());
            report.violations.push(format!(
                "{leaked} client(s) still registered after wave ending at session {session}"
            ));
        }
        let breaches = control.with_core(|c| validate::check_all(c));
        for b in breaches {
            report.violations.push(format!("after session {session}: {b}"));
        }
        // A fault-free control connection must still get answers: the
        // server survived the faults, not just outlived them.
        let mut probe = match Connection::establish(server.connect_pipe(), "soak-probe") {
            Ok(c) => c,
            Err(e) => {
                report.violations.push(format!("probe could not connect: {e}"));
                break;
            }
        };
        probe.timeout = Duration::from_secs(5);
        if let Err(e) = probe.sync() {
            report.violations.push(format!("probe sync failed after session {session}: {e}"));
            break;
        }
    }

    let ticks_at_end = control.stats().ticks;
    report.engine_ticks = ticks_at_end.saturating_sub(ticks_at_start);
    if cfg.sessions > 0 && report.engine_ticks == 0 {
        report.violations.push("engine made no progress across the soak".into());
    }
    let (dropped, evicted) = control.with_core(|c| {
        let snap = c.tel.registry.snapshot();
        let get = |name: &str| {
            snap.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v).unwrap_or(0)
        };
        (get("events_dropped_total"), get("clients_evicted_total"))
    });
    report.events_dropped = dropped;
    report.clients_evicted = evicted;
    server.shutdown();
    report
}

fn kind_slot(kind: FaultKind) -> usize {
    FaultKind::ALL.iter().position(|&k| k == kind).unwrap_or(0)
}

/// One scripted client session over a faulty transport. Returns whether
/// the whole workload survived. Injected faults legitimately abort it
/// anywhere — what they must never do is corrupt the server.
fn run_session(duplex: da_proto::transport::Duplex, index: usize) -> bool {
    let mut conn = match Connection::establish(duplex, &format!("soak-{index}")) {
        Ok(c) => c,
        Err(_) => return false,
    };
    // Tight deadline: a torn or lost reply should fail the session in
    // milliseconds, not stall the whole wave.
    conn.timeout = Duration::from_millis(250);
    let outcome = session_workload(&mut conn, index);
    // A third of the sessions vanish abruptly — queue running, events
    // selected, no teardown requests — exercising disconnect cleanup.
    // The others drop here too; the difference is how much server
    // state is live when the connection dies.
    outcome.is_ok()
}

fn session_workload(conn: &mut Connection, index: usize) -> Result<(), AlibError> {
    let loud = conn.create_loud(None)?;
    let player = conn.create_vdevice(loud, DeviceClass::Player, Vec::new())?;
    let out = conn.create_vdevice(loud, DeviceClass::Output, Vec::new())?;
    conn.create_wire(player, 0, out, 0, WireType::Any)?;
    conn.select_events(ResourceId::Loud(loud), EventMask::all())?;
    let stype = SoundType { encoding: Encoding::ULaw, sample_rate: 8000, channels: 1 };
    let sound = conn.upload_sound(stype, &[0x7Fu8; 800])?;
    conn.map_loud(loud)?;
    conn.enqueue(
        loud,
        vec![QueueEntry::Device { vdev: player, cmd: DeviceCommand::Play(sound) }],
    )?;
    conn.start_queue(loud)?;
    if index.is_multiple_of(3) {
        // Abrupt departure: maximum live state, zero teardown.
        return Ok(());
    }
    let atom = conn.intern_atom("SOAK")?;
    conn.change_property(ResourceId::Sound(sound), atom, atom, b"soak".to_vec())?;
    conn.sync()?;
    conn.stop_queue(loud)?;
    conn.destroy_loud(loud)?;
    conn.sync()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small soak must come back clean and must have injected at
    /// least one fault (the rates are low but 20 sessions give
    /// hundreds of opportunities).
    #[test]
    fn small_soak_is_clean() {
        let report = soak(&SoakConfig { seed: 7, sessions: 20, concurrency: 4, workers: 2 });
        assert!(report.clean(), "soak violations: {:?}", report.violations);
        assert_eq!(report.completed_ok + report.died_early, 20);
        assert!(report.total_faults() > 0, "no faults injected");
        assert!(report.engine_ticks > 0);
        // The test profile carries debug_assertions, so this soak ran
        // with the shard borrow sanitizer watching every access.
        assert_eq!(report.sanitizer_active, cfg!(debug_assertions));
    }

    /// A fault-free soak (quiet plans are not used here, but zero
    /// sessions still checks the scaffolding) reports cleanly.
    #[test]
    fn empty_soak_is_clean() {
        let report = soak(&SoakConfig { seed: 0, sessions: 0, concurrency: 4, workers: 1 });
        assert!(report.clean(), "soak violations: {:?}", report.violations);
        assert_eq!(report.sessions, 0);
    }
}
