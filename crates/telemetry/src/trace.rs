//! Structured tracing: a ring-buffer event journal with spans and sinks.
//!
//! The journal is a bounded in-memory ring of timestamped events. An
//! atomic level filter gates recording: a disabled event or span costs a
//! single relaxed load, so per-request spans can live permanently on hot
//! paths. Sinks observe events as they are recorded — a stderr
//! pretty-printer for interactive debugging and a JSONL writer for
//! machine consumption ship in-crate; anything implementing [`Sink`]
//! can be attached.

use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Severity / verbosity of a journal event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Finest-grained tracing.
    Trace = 0,
    /// Per-request spans and similar high-volume detail.
    Debug = 1,
    /// Notable but expected occurrences (the default filter).
    Info = 2,
    /// Deadline misses, degraded behavior.
    Warn = 3,
    /// Things that should never happen.
    Error = 4,
}

impl Level {
    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Trace,
            1 => Level::Debug,
            2 => Level::Info,
            3 => Level::Warn,
            _ => Level::Error,
        }
    }

    /// Lower-case name, fixed width friendly.
    pub fn name(self) -> &'static str {
        match self {
            Level::Trace => "trace",
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// One recorded journal entry.
#[derive(Clone, Debug)]
pub struct JournalEvent {
    /// Monotonic sequence number (1-based).
    pub seq: u64,
    /// Microseconds since the journal was created.
    pub at_us: u64,
    /// Severity.
    pub level: Level,
    /// Static event/span name, e.g. `"dispatch"`.
    pub target: &'static str,
    /// Formatted `key=value` fields (may be empty).
    pub fields: String,
    /// For span-close events, the span's duration in microseconds.
    pub elapsed_us: Option<u64>,
}

/// Receives every recorded event.
pub trait Sink: Send {
    /// Called with each event as it is recorded (journal lock held —
    /// keep it quick).
    fn emit(&mut self, event: &JournalEvent);

    /// Called when the journal's outputs rotate ([`Journal::rotate_sinks`]):
    /// `at_us` is the journal's monotonic clock at the rotation instant
    /// and `wall_unix_us` the wall clock (microseconds since the Unix
    /// epoch), so offline consumers can map event `at_us` values to
    /// absolute time. The default implementation ignores rotations.
    fn rotate(&mut self, at_us: u64, wall_unix_us: u64) {
        let _ = (at_us, wall_unix_us);
    }
}

/// Pretty-prints events to stderr.
#[derive(Debug, Default)]
pub struct StderrPretty;

impl Sink for StderrPretty {
    fn emit(&mut self, event: &JournalEvent) {
        let elapsed = match event.elapsed_us {
            Some(us) => format!(" ({us}us)"),
            None => String::new(),
        };
        eprintln!(
            "[{:>10.3}ms {:<5}] {}{}{}",
            event.at_us as f64 / 1000.0,
            event.level.name(),
            event.target,
            event.fields,
            elapsed,
        );
    }
}

/// Writes events as JSON Lines to any `Write`.
pub struct JsonlSink<W: Write + Send> {
    w: W,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(w: W) -> Self {
        JsonlSink { w }
    }

    /// Returns the wrapped writer.
    pub fn into_inner(self) -> W {
        self.w
    }
}

fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl<W: Write + Send> Sink for JsonlSink<W> {
    fn emit(&mut self, event: &JournalEvent) {
        let mut line = String::with_capacity(96);
        line.push_str(&format!(
            "{{\"seq\":{},\"at_us\":{},\"level\":\"{}\",\"target\":\"",
            event.seq,
            event.at_us,
            event.level.name(),
        ));
        json_escape_into(&mut line, event.target);
        line.push_str("\",\"fields\":\"");
        json_escape_into(&mut line, event.fields.trim_start());
        line.push('"');
        if let Some(us) = event.elapsed_us {
            line.push_str(&format!(",\"elapsed_us\":{us}"));
        }
        line.push('}');
        let _ = writeln!(self.w, "{line}");
    }

    /// Opens the post-rotation stream with an anchor record tying the
    /// journal's monotonic clock to the wall clock. Events carry only
    /// monotonic `at_us`; `wall_unix_us - at_us` recovers the journal
    /// epoch's absolute time for every line that follows.
    fn rotate(&mut self, at_us: u64, wall_unix_us: u64) {
        let _ = writeln!(
            self.w,
            "{{\"anchor\":{{\"at_us\":{at_us},\"wall_unix_us\":{wall_unix_us}}}}}"
        );
    }
}

struct JournalInner {
    ring: VecDeque<JournalEvent>,
    capacity: usize,
    next_seq: u64,
    sinks: Vec<Box<dyn Sink>>,
}

/// A bounded ring buffer of structured events with an atomic level
/// filter.
pub struct Journal {
    level: AtomicU8,
    epoch: Instant,
    inner: Mutex<JournalInner>,
}

impl Journal {
    /// Creates a journal retaining at most `capacity` events (the filter
    /// defaults to [`Level::Info`]).
    pub fn new(capacity: usize) -> Journal {
        Journal {
            level: AtomicU8::new(Level::Info as u8),
            epoch: Instant::now(),
            inner: Mutex::new(JournalInner {
                ring: VecDeque::with_capacity(capacity.min(1024)),
                capacity: capacity.max(1),
                next_seq: 1,
                sinks: Vec::new(),
            }),
        }
    }

    /// Sets the level filter; events below it are dropped at the cost of
    /// one atomic load.
    pub fn set_level(&self, level: Level) {
        self.level.store(level as u8, Ordering::Relaxed);
    }

    /// The current level filter.
    pub fn level(&self) -> Level {
        Level::from_u8(self.level.load(Ordering::Relaxed))
    }

    /// Whether events at `level` are currently recorded.
    #[inline]
    pub fn enabled(&self, level: Level) -> bool {
        level as u8 >= self.level.load(Ordering::Relaxed)
    }

    /// Attaches a sink that observes every subsequently recorded event.
    pub fn add_sink(&self, sink: Box<dyn Sink>) {
        self.inner.lock().expect("journal poisoned").sinks.push(sink);
    }

    /// Records an event if the filter allows it.
    pub fn event(&self, level: Level, target: &'static str, fields: String) {
        if self.enabled(level) {
            self.push(level, target, fields, None);
        }
    }

    /// Opens a span; the returned guard records a close event with the
    /// span's duration when dropped. Callers should gate on
    /// [`Journal::enabled`] first (the [`crate::span!`] macro does).
    pub fn begin_span(
        self: &Arc<Self>,
        level: Level,
        target: &'static str,
        fields: String,
    ) -> SpanGuard {
        SpanGuard {
            journal: Arc::clone(self),
            level,
            target,
            fields,
            started: Instant::now(),
        }
    }

    /// Notifies every sink that its output has rotated, passing the
    /// current monotonic/wall-clock pair so sinks can write an anchor
    /// record (see [`Sink::rotate`]). Call after swapping log files.
    pub fn rotate_sinks(&self) {
        let at_us = self.epoch.elapsed().as_micros() as u64;
        let wall_unix_us = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        let mut inner = self.inner.lock().expect("journal poisoned");
        for sink in &mut inner.sinks {
            sink.rotate(at_us, wall_unix_us);
        }
    }

    /// The most recent `n` events, oldest first.
    pub fn recent(&self, n: usize) -> Vec<JournalEvent> {
        let inner = self.inner.lock().expect("journal poisoned");
        inner.ring.iter().rev().take(n).rev().cloned().collect()
    }

    /// Total events recorded (including ones the ring has evicted).
    pub fn recorded(&self) -> u64 {
        self.inner.lock().expect("journal poisoned").next_seq - 1
    }

    fn push(
        &self,
        level: Level,
        target: &'static str,
        fields: String,
        elapsed_us: Option<u64>,
    ) {
        let at_us = self.epoch.elapsed().as_micros() as u64;
        let mut inner = self.inner.lock().expect("journal poisoned");
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let event = JournalEvent { seq, at_us, level, target, fields, elapsed_us };
        for sink in &mut inner.sinks {
            sink.emit(&event);
        }
        if inner.ring.len() == inner.capacity {
            inner.ring.pop_front();
        }
        inner.ring.push_back(event);
    }
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal").field("level", &self.level()).finish_non_exhaustive()
    }
}

/// Closes its span on drop, recording the elapsed time.
pub struct SpanGuard {
    journal: Arc<Journal>,
    level: Level,
    target: &'static str,
    fields: String,
    started: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.started.elapsed().as_micros() as u64;
        self.journal.push(
            self.level,
            self.target,
            std::mem::take(&mut self.fields),
            Some(elapsed),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_filter_gates_recording() {
        let j = Journal::new(8);
        j.event(Level::Debug, "hidden", String::new());
        j.event(Level::Info, "shown", String::new());
        let events = j.recent(8);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].target, "shown");
        j.set_level(Level::Trace);
        j.event(Level::Debug, "now_shown", String::new());
        assert_eq!(j.recent(8).len(), 2);
    }

    #[test]
    fn ring_evicts_oldest() {
        let j = Journal::new(3);
        for _ in 0..5 {
            j.event(Level::Info, "e", String::new());
        }
        let events = j.recent(10);
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].seq, 3);
        assert_eq!(events[2].seq, 5);
        assert_eq!(j.recorded(), 5);
    }

    #[test]
    fn span_records_duration() {
        let j = Arc::new(Journal::new(8));
        j.set_level(Level::Debug);
        {
            let _span = crate::span!(j, "dispatch", client = 3, opcode = 47);
        }
        let events = j.recent(8);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].target, "dispatch");
        assert_eq!(events[0].fields, " client=3 opcode=47");
        assert!(events[0].elapsed_us.is_some());
        // Disabled level: the span macro is a no-op.
        j.set_level(Level::Warn);
        {
            let _span = crate::span!(j, "dispatch", client = 4);
        }
        assert_eq!(j.recent(8).len(), 1);
    }

    #[test]
    fn jsonl_sink_writes_valid_lines() {
        let j = Journal::new(8);
        j.add_sink(Box::new(JsonlSink::new(Vec::<u8>::new())));
        j.event(Level::Warn, "tick_overrun", " spent_us=12345 \"q\"".to_string());
        // The sink is boxed away; verify via a second, inspectable sink
        // instead: re-emit manually.
        let mut sink = JsonlSink::new(Vec::<u8>::new());
        for e in j.recent(8) {
            sink.emit(&e);
        }
        let out = String::from_utf8(sink.into_inner()).expect("utf8");
        assert!(out.starts_with("{\"seq\":1,"));
        assert!(out.contains("\"level\":\"warn\""));
        assert!(out.contains("\"target\":\"tick_overrun\""));
        assert!(out.contains("spent_us=12345 \\\"q\\\""));
        assert!(out.ends_with("}\n"));
    }

    #[test]
    fn rotation_writes_anchor_record() {
        let mut sink = JsonlSink::new(Vec::<u8>::new());
        Sink::rotate(&mut sink, 123, 1_700_000_000_000_456);
        sink.emit(&JournalEvent {
            seq: 9,
            at_us: 130,
            level: Level::Info,
            target: "after_rotate",
            fields: String::new(),
            elapsed_us: None,
        });
        let out = String::from_utf8(sink.into_inner()).expect("utf8");
        let mut lines = out.lines();
        assert_eq!(
            lines.next(),
            Some("{\"anchor\":{\"at_us\":123,\"wall_unix_us\":1700000000000456}}")
        );
        assert!(lines.next().expect("event line").starts_with("{\"seq\":9,"));
    }

    #[test]
    fn journal_rotation_anchors_every_sink() {
        struct Capture(Arc<Mutex<Vec<(u64, u64)>>>);
        impl Sink for Capture {
            fn emit(&mut self, _event: &JournalEvent) {}
            fn rotate(&mut self, at_us: u64, wall_unix_us: u64) {
                self.0.lock().expect("capture").push((at_us, wall_unix_us));
            }
        }
        let seen = Arc::new(Mutex::new(Vec::new()));
        let j = Journal::new(8);
        j.add_sink(Box::new(Capture(Arc::clone(&seen))));
        j.add_sink(Box::new(Capture(Arc::clone(&seen))));
        j.rotate_sinks();
        let seen = seen.lock().expect("capture");
        assert_eq!(seen.len(), 2);
        // 2023-01-01 in unix microseconds: the wall clock is sane.
        assert!(seen.iter().all(|&(_, wall)| wall > 1_672_531_200_000_000));
    }
}
