//! Lock-light metric primitives and the registry that names them.
//!
//! All hot-path operations (`inc`, `add`, `set`, `record`) are relaxed
//! atomic writes on `Arc`-shared state; the registry's internal lock is
//! taken only at registration and snapshot time. Snapshots are
//! best-effort consistent: each value is read atomically but the set is
//! not a single transaction, which is fine for observability.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of log2 buckets in every [`Histogram`].
pub const HISTOGRAM_BUCKETS: usize = 32;

/// The bucket a value lands in: bucket 0 holds zero, bucket `i` holds
/// values in `[2^(i-1), 2^i - 1]`, and the last bucket absorbs
/// everything `>= 2^(HISTOGRAM_BUCKETS-2)`.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// The largest value bucket `i` can hold (inclusive).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrites the value. Only for mirroring a total that is tracked
    /// elsewhere (e.g. plain `u64` fields behind the core lock, hardware
    /// lifetime stats) into the registry at snapshot time; never call it
    /// from a hot path that also uses [`Counter::add`].
    pub fn mirror(&self, total: u64) {
        self.0.store(total, Ordering::Relaxed);
    }
}

/// An instantaneous signed value.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the value by `delta` (may be negative).
    pub fn adjust(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket log2 histogram of `u64` samples.
///
/// Recording is three relaxed atomic adds; there is no lock and no
/// allocation. Bucket boundaries are powers of two, which is plenty for
/// latency distributions where one cares about orders of magnitude and
/// coarse percentiles.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a duration in whole microseconds.
    pub fn record_duration_us(&self, d: Duration) {
        self.record(d.as_micros() as u64);
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.0.count.load(Ordering::Relaxed),
            sum: self.0.sum.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Per-bucket sample counts (see [`bucket_index`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate `p`-th percentile (`0.0..=1.0`): the upper bound of
    /// the bucket where the cumulative count crosses `p * count`,
    /// clamped to `sum` — the top bucket is open-ended (its nominal
    /// bound is `u64::MAX`), and no single sample can exceed the sum of
    /// all samples, so the clamp keeps saturated distributions from
    /// absurdly over-reporting high percentiles.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (p.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper_bound(i).min(self.sum);
            }
        }
        self.sum
    }
}

/// Wire-level counters for one client connection, shared between the
/// connection's reader thread, writer thread, and the core's client
/// state (for `ListClients`-style per-client accounting).
#[derive(Debug, Default)]
pub struct ConnCounters {
    /// Requests decoded and dispatched.
    pub requests: AtomicU64,
    /// Replies sent.
    pub replies: AtomicU64,
    /// Events sent.
    pub events: AtomicU64,
    /// Errors sent.
    pub errors: AtomicU64,
    /// Request payload bytes received.
    pub bytes_in: AtomicU64,
    /// Reply/event/error payload bytes sent.
    pub bytes_out: AtomicU64,
    /// Events dropped by the slow-client policy (bounded outbound
    /// channel full; events are the low-priority tier).
    pub events_dropped: AtomicU64,
}

impl ConnCounters {
    /// Relaxed load of one field — convenience for snapshot code.
    pub fn load(field: &AtomicU64) -> u64 {
        field.load(Ordering::Relaxed)
    }

    /// Relaxed add — convenience for the connection threads.
    pub fn bump(field: &AtomicU64, n: u64) {
        field.fetch_add(n, Ordering::Relaxed);
    }
}

enum RegEntry {
    Counter(&'static str, Counter),
    Gauge(&'static str, Gauge),
    Histogram(&'static str, Histogram),
}

impl RegEntry {
    fn name(&self) -> &'static str {
        match self {
            RegEntry::Counter(n, _) | RegEntry::Gauge(n, _) | RegEntry::Histogram(n, _) => n,
        }
    }
}

/// A named collection of metrics.
///
/// Registration hands out clone-cheap handles; re-registering an
/// existing name returns a handle to the same underlying metric (same
/// kind) or panics (kind mismatch). Names must be `snake_case` — the
/// registry enforces it at runtime and `xtask lint` enforces it
/// statically on `counter!`/`gauge!`/`histogram!` call sites.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<RegEntry>>,
}

fn assert_snake_case(name: &str) {
    let ok = !name.is_empty()
        && name.starts_with(|c: char| c.is_ascii_lowercase())
        && name.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
    assert!(ok, "metric name {name:?} is not snake_case");
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers (or fetches) a counter.
    pub fn counter(&self, name: &'static str) -> Counter {
        assert_snake_case(name);
        let mut entries = self.entries.lock().expect("registry poisoned");
        for e in entries.iter() {
            if e.name() == name {
                match e {
                    RegEntry::Counter(_, c) => return c.clone(),
                    _ => panic!("metric {name:?} already registered with another kind"),
                }
            }
        }
        let c = Counter::default();
        entries.push(RegEntry::Counter(name, c.clone()));
        c
    }

    /// Registers (or fetches) a gauge.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        assert_snake_case(name);
        let mut entries = self.entries.lock().expect("registry poisoned");
        for e in entries.iter() {
            if e.name() == name {
                match e {
                    RegEntry::Gauge(_, g) => return g.clone(),
                    _ => panic!("metric {name:?} already registered with another kind"),
                }
            }
        }
        let g = Gauge::default();
        entries.push(RegEntry::Gauge(name, g.clone()));
        g
    }

    /// Registers (or fetches) a histogram.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        assert_snake_case(name);
        let mut entries = self.entries.lock().expect("registry poisoned");
        for e in entries.iter() {
            if e.name() == name {
                match e {
                    RegEntry::Histogram(_, h) => return h.clone(),
                    _ => panic!("metric {name:?} already registered with another kind"),
                }
            }
        }
        let h = Histogram::default();
        entries.push(RegEntry::Histogram(name, h.clone()));
        h
    }

    /// A point-in-time copy of every registered metric, in registration
    /// order.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let entries = self.entries.lock().expect("registry poisoned");
        let mut snap = RegistrySnapshot::default();
        for e in entries.iter() {
            match e {
                RegEntry::Counter(n, c) => snap.counters.push((n.to_string(), c.get())),
                RegEntry::Gauge(n, g) => snap.gauges.push((n.to_string(), g.get())),
                RegEntry::Histogram(n, h) => snap.histograms.push((n.to_string(), h.snapshot())),
            }
        }
        snap
    }
}

/// A point-in-time copy of a [`Registry`].
#[derive(Clone, Debug, Default)]
pub struct RegistrySnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` for every histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        // Bucket 0 holds only zero; bucket i holds [2^(i-1), 2^i - 1].
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            let hi = bucket_upper_bound(i);
            assert_eq!(bucket_index(hi), i, "upper bound of bucket {i}");
            assert_eq!(bucket_index(hi + 1), i + 1, "first value past bucket {i}");
            let lo = (bucket_upper_bound(i - 1)).saturating_add(1);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
        }
        // The last bucket absorbs everything up to u64::MAX.
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn histogram_percentiles() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        // p50 of 1..=1000 lands in the bucket holding 500, i.e. [256,511].
        assert_eq!(s.percentile(0.5), 511);
        assert_eq!(s.percentile(1.0), 1023);
        // p0 returns the first non-empty bucket's bound.
        assert_eq!(s.percentile(0.0), 1);
        assert!((s.mean() - 500.5).abs() < 1e-9);
        let empty = Histogram::default().snapshot();
        assert_eq!(empty.percentile(0.99), 0);
        assert_eq!(empty.mean(), 0.0);
    }

    #[test]
    fn percentile_clamps_at_the_saturated_top_bucket() {
        // A sample in the open-ended top bucket must not report the
        // bucket's nominal u64::MAX bound; the sum bounds any sample.
        let h = Histogram::default();
        h.record(40_000_000_000); // > 2^30, lands in bucket 31
        let s = h.snapshot();
        assert_eq!(s.buckets[HISTOGRAM_BUCKETS - 1], 1);
        assert_eq!(s.percentile(0.99), 40_000_000_000);
        assert_eq!(s.percentile(1.0), 40_000_000_000);

        // Mixed: p50 keeps its small-bucket bound, p100 clamps to sum.
        let h = Histogram::default();
        for _ in 0..9 {
            h.record(10);
        }
        h.record(40_000_000_000);
        let s = h.snapshot();
        assert_eq!(s.percentile(0.5), 15);
        assert_eq!(s.percentile(1.0), 40_000_000_090);
    }

    #[test]
    fn concurrent_increments() {
        let reg = Registry::new();
        let c = reg.counter("smoke_total");
        let g = reg.gauge("smoke_level");
        let h = reg.histogram("smoke_us");
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                let g = g.clone();
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        c.inc();
                        g.adjust(1);
                        h.record(i % 257);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("worker panicked");
        }
        assert_eq!(c.get(), 80_000);
        assert_eq!(g.get(), 80_000);
        let s = h.snapshot();
        assert_eq!(s.count, 80_000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 80_000);
    }

    #[test]
    fn registry_snapshot_and_reuse() {
        let reg = Registry::new();
        let a = reg.counter("a_total");
        let b = reg.counter("a_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        reg.gauge("depth").set(-4);
        reg.histogram("lat_us").record(100);
        let snap = reg.snapshot();
        assert_eq!(snap.counters, vec![("a_total".to_string(), 3)]);
        assert_eq!(snap.gauges, vec![("depth".to_string(), -4)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].1.count, 1);
    }

    #[test]
    #[should_panic(expected = "another kind")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("same_name");
        let _ = reg.gauge("same_name");
    }

    #[test]
    #[should_panic(expected = "snake_case")]
    fn bad_name_panics() {
        let reg = Registry::new();
        let _ = reg.counter("NotSnake");
    }

    #[test]
    fn conn_counters_roundtrip() {
        let c = ConnCounters::default();
        ConnCounters::bump(&c.bytes_in, 10);
        ConnCounters::bump(&c.bytes_in, 5);
        assert_eq!(ConnCounters::load(&c.bytes_in), 15);
        assert_eq!(ConnCounters::load(&c.bytes_out), 0);
    }
}
