//! Telemetry substrate: lock-light metrics and structured tracing.
//!
//! The server multiplexes many clients over real-time hardware; you
//! cannot keep a deadline you cannot measure. This crate provides the
//! two primitives everything else builds on:
//!
//! - [`metrics`] — a registry of counters, gauges and fixed-bucket log2
//!   histograms. Handles are clone-cheap `Arc`s over atomics; the hot
//!   path never takes a lock (the registry's mutex is touched only at
//!   registration and snapshot time).
//! - [`trace`] — a structured event journal: a bounded ring buffer of
//!   timestamped events and spans with an atomic level filter, plus
//!   pluggable sinks (stderr pretty-printer, JSONL writer).
//!
//! No external dependencies (std only), consistent with the workspace's
//! vendored-shim policy.

pub mod metrics;
pub mod trace;

pub use metrics::{
    bucket_index, bucket_upper_bound, ConnCounters, Counter, Gauge, Histogram,
    HistogramSnapshot, Registry, RegistrySnapshot, HISTOGRAM_BUCKETS,
};
pub use trace::{Journal, JournalEvent, JsonlSink, Level, Sink, SpanGuard, StderrPretty};

/// Registers (or fetches) a counter by name on a registry.
///
/// The name must be a string literal: `xtask lint` scans `counter!`
/// invocations to enforce the metric-name catalog (snake_case, each name
/// registered exactly once, listed in DESIGN.md §10).
#[macro_export]
macro_rules! counter {
    ($reg:expr, $name:literal) => {
        $reg.counter($name)
    };
}

/// Registers (or fetches) a gauge by name on a registry. See [`counter!`].
#[macro_export]
macro_rules! gauge {
    ($reg:expr, $name:literal) => {
        $reg.gauge($name)
    };
}

/// Registers (or fetches) a histogram by name on a registry. See
/// [`counter!`].
#[macro_export]
macro_rules! histogram {
    ($reg:expr, $name:literal) => {
        $reg.histogram($name)
    };
}

/// Opens a debug-level span on a journal, returning an
/// `Option<SpanGuard>` that records the span's duration when dropped.
///
/// When the journal's level filter is above `Debug` this evaluates to
/// `None` after a single relaxed atomic load — per-request spans on hot
/// paths cost nearly nothing while disabled.
///
/// ```
/// use da_telemetry::{span, Journal, Level};
/// use std::sync::Arc;
///
/// let journal = Arc::new(Journal::new(64));
/// journal.set_level(Level::Debug);
/// {
///     let _span = span!(journal, "dispatch", client = 3, opcode = 47);
/// }
/// assert_eq!(journal.recent(16).len(), 1);
/// ```
#[macro_export]
macro_rules! span {
    ($journal:expr, $target:literal $(, $key:ident = $val:expr)* $(,)?) => {{
        let __j = &$journal;
        if __j.enabled($crate::Level::Debug) {
            #[allow(unused_mut)]
            let mut __fields = String::new();
            $(
                {
                    use std::fmt::Write as _;
                    let _ = write!(__fields, concat!(" ", stringify!($key), "={}"), $val);
                }
            )*
            Some($crate::Journal::begin_span(
                __j,
                $crate::Level::Debug,
                $target,
                __fields,
            ))
        } else {
            None
        }
    }};
}
