//! Workspace consistency lints (`cargo run -p xtask -- lint`).
//!
//! The protocol is defined three times over: the `proto` crate's opcode
//! and event tables, the server's dispatch match, and the documentation.
//! The compiler keeps each definition internally consistent but says
//! nothing about drift *between* them — a request handler deleted from
//! `dispatch.rs` behind a catch-all, an event variant nothing emits, an
//! error code `Display` forgot. These passes parse the sources as text
//! and cross-check the tables.
//!
//! Text, not syn: the workspace vendors its dependencies and carries no
//! parser crate, and text-level passes have a virtue of their own — the
//! self-tests lint deliberately broken *fixture strings*, which would be
//! unrepresentable as compiled code precisely because they are wrong.
//!
//! Every pass returns [`Finding`]s; `main` prints them and exits
//! non-zero if any survive the allowlist (`crates/xtask/lint-allow.txt`,
//! intentional gaps only, each entry commented).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

pub mod races;
pub mod rtsafe;

/// One consistency problem found by a lint pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which pass produced it (`opcode-table`, `event-emission`, ...).
    pub pass: &'static str,
    /// The file the problem lives in (workspace-relative).
    pub file: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.pass, self.file, self.message)
    }
}

pub(crate) fn finding(pass: &'static str, file: &str, message: String) -> Finding {
    Finding { pass, file: file.to_string(), message }
}

/// The source text the passes cross-check. Collected from the workspace
/// by [`Sources::load`]; unit tests build them from fixture strings.
#[derive(Debug, Default)]
pub struct Sources {
    /// `crates/proto/src/request.rs`.
    pub request: String,
    /// `crates/proto/src/event.rs`.
    pub event: String,
    /// `crates/proto/src/error.rs`.
    pub error: String,
    /// `crates/alib/src/error.rs`.
    pub alib_error: String,
    /// `crates/core/src/dispatch.rs`.
    pub dispatch: String,
    /// All server-side sources: `(path, text)` for `core/src/*.rs` and
    /// `hw/src/*.rs`.
    pub server_files: Vec<(String, String)>,
    /// All codec sources: `(path, text)` for `proto/src/*.rs` (the
    /// `casts` pass scans these plus the dispatcher).
    pub proto_files: Vec<(String, String)>,
    /// All client-library sources: `(path, text)` for `alib/src/*.rs`
    /// (the `unwrap` pass scans these — a panic in Alib kills the
    /// application just as surely as one in the server).
    pub alib_files: Vec<(String, String)>,
    /// All DSP sources: `(path, text)` for `dsp/src/*.rs` (the `rtsafe`
    /// passes scan these — the engine's hot leaves live here).
    pub dsp_files: Vec<(String, String)>,
    /// `DESIGN.md`.
    pub design: String,
}

impl Sources {
    /// Reads the real workspace rooted at `root`.
    pub fn load(root: &Path) -> io::Result<Sources> {
        let read = |rel: &str| fs::read_to_string(root.join(rel));
        let read_dir_sources = |dir: &str| -> io::Result<Vec<(String, String)>> {
            let mut entries: Vec<_> = fs::read_dir(root.join(dir))?
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "rs"))
                .collect();
            entries.sort();
            let mut out = Vec::new();
            for p in entries {
                let rel = format!(
                    "{dir}/{}",
                    p.file_name().map(|n| n.to_string_lossy()).unwrap_or_default()
                );
                out.push((rel, fs::read_to_string(&p)?));
            }
            Ok(out)
        };
        let mut server_files = read_dir_sources("crates/core/src")?;
        server_files.extend(read_dir_sources("crates/hw/src")?);
        let proto_files = read_dir_sources("crates/proto/src")?;
        let alib_files = read_dir_sources("crates/alib/src")?;
        let dsp_files = read_dir_sources("crates/dsp/src")?;
        Ok(Sources {
            request: read("crates/proto/src/request.rs")?,
            event: read("crates/proto/src/event.rs")?,
            error: read("crates/proto/src/error.rs")?,
            alib_error: read("crates/alib/src/error.rs")?,
            dispatch: read("crates/core/src/dispatch.rs")?,
            server_files,
            proto_files,
            alib_files,
            dsp_files,
            design: read("DESIGN.md")?,
        })
    }
}

// ---------------------------------------------------------------------------
// Text helpers
// ---------------------------------------------------------------------------

/// True when `word` occurs in `code` as a whole identifier (not as a
/// substring of a longer one).
pub(crate) fn has_word(code: &str, word: &str) -> bool {
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut start = 0;
    while let Some(i) = code[start..].find(word) {
        let at = start + i;
        let before_ok = !code[..at].chars().next_back().is_some_and(is_ident);
        let after_ok = !code[at + word.len()..].chars().next().is_some_and(is_ident);
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

/// Cuts a line at its `//` comment, if any. Naive about `//` inside
/// string literals, which is fine for these sources.
pub(crate) fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

pub(crate) fn brace_delta(line: &str) -> i32 {
    let code = strip_comment(line);
    code.chars().fold(0, |d, c| match c {
        '{' => d + 1,
        '}' => d - 1,
        _ => d,
    })
}

/// The brace-matched block starting at the first `{` after `header`.
pub(crate) fn block_after<'a>(src: &'a str, header: &str) -> Option<&'a str> {
    delim_block_after(src, header, '{', '}')
}

pub(crate) fn delim_block_after<'a>(src: &'a str, header: &str, open_c: char, close_c: char) -> Option<&'a str> {
    let at = src.find(header)?;
    let open = at + src[at..].find(open_c)?;
    let mut depth = 0i32;
    for (i, c) in src[open..].char_indices() {
        if c == open_c {
            depth += 1;
        } else if c == close_c {
            depth -= 1;
            if depth == 0 {
                return Some(&src[open..open + i + c.len_utf8()]);
            }
        }
    }
    None
}

/// The variant names of `pub enum <name>`, in declaration order.
pub fn enum_variants(src: &str, name: &str) -> Vec<String> {
    let Some(body) = block_after(src, &format!("enum {name}")) else {
        return Vec::new();
    };
    let mut depth = 0i32;
    let mut out = Vec::new();
    for line in body.lines() {
        let before = depth;
        depth += brace_delta(line);
        if before != 1 {
            continue;
        }
        let t = strip_comment(line).trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let ident: String =
            t.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
        if ident.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            out.push(ident);
        }
    }
    out
}

/// All `<prefix>::Ident` occurrences in `src`, comments stripped.
pub fn qualified_idents(src: &str, prefix: &str) -> BTreeSet<String> {
    let needle = format!("{prefix}::");
    let mut out = BTreeSet::new();
    for line in src.lines() {
        let code = strip_comment(line);
        let mut rest = code;
        while let Some(i) = rest.find(&needle) {
            rest = &rest[i + needle.len()..];
            let ident: String =
                rest.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
            if ident.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                out.insert(ident);
            }
        }
    }
    out
}

/// `(variant, opcode)` pairs from the `impl WireWrite for Request`
/// block: each match arm names its variant and immediately writes its
/// opcode with `w.u8(N)`.
pub fn write_opcodes(request_src: &str) -> Vec<(String, u32)> {
    let Some(block) = block_after(request_src, "impl WireWrite for Request") else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut chunks = block.split("Request::");
    chunks.next(); // text before the first arm
    for chunk in chunks {
        let variant: String =
            chunk.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
        let Some(i) = chunk.find("w.u8(") else { continue };
        let digits: String =
            chunk[i + 5..].chars().take_while(|c| c.is_ascii_digit()).collect();
        if let (false, Ok(op)) = (variant.is_empty(), digits.parse()) {
            out.push((variant, op));
        }
    }
    out
}

/// `(opcode, variant)` pairs from the `impl WireRead for Request`
/// block's `N => Request::V` arms.
pub fn read_opcodes(request_src: &str) -> Vec<(u32, String)> {
    let Some(block) = block_after(request_src, "impl WireRead for Request") else {
        return Vec::new();
    };
    let mut out = Vec::new();
    // An arm is either `N => Request::V ...` on one line or `N => {`
    // with the `Request::V` expression on a following line; `pending`
    // carries the opcode across in the second shape.
    let mut pending: Option<u32> = None;
    for line in block.lines() {
        let t = strip_comment(line).trim();
        let rhs = match t.find("=>") {
            Some(arrow) => {
                let lhs = t[..arrow].trim();
                match lhs.parse::<u32>() {
                    Ok(op) => {
                        pending = Some(op);
                        t[arrow + 2..].trim()
                    }
                    Err(_) => continue,
                }
            }
            None => t,
        };
        let (Some(op), Some(variant)) = (pending, rhs.strip_prefix("Request::")) else {
            continue;
        };
        let ident: String =
            variant.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
        if !ident.is_empty() {
            out.push((op, ident));
            pending = None;
        }
    }
    out
}

/// The variants listed in `Request::has_reply`.
pub fn reply_variants(request_src: &str) -> BTreeSet<String> {
    match block_after(request_src, "fn has_reply") {
        Some(block) => qualified_idents(block, "Request"),
        None => BTreeSet::new(),
    }
}

/// Splits the dispatch `match` into `(variant, arm body)` pairs. Arms
/// are recognised as lines whose code starts with `Request::` at the
/// match's own brace depth; each arm's text runs until the next arm or
/// the end of the match.
pub fn dispatch_arms(dispatch_src: &str) -> Vec<(String, String)> {
    let mut arms: Vec<(String, String)> = Vec::new();
    let mut current: Option<(String, String)> = None;
    let mut match_depth: Option<i32> = None;
    let mut depth = 0i32;
    for line in dispatch_src.lines() {
        let before = depth;
        depth += brace_delta(line);
        if let Some(md) = match_depth {
            if before < md {
                // The match block ended.
                if let Some(a) = current.take() {
                    arms.push(a);
                }
                match_depth = None;
            }
        }
        let t = strip_comment(line).trim();
        if let Some(rest) = t.strip_prefix("Request::") {
            if match_depth.is_none() {
                match_depth = Some(before);
            }
            if match_depth == Some(before) {
                if let Some(a) = current.take() {
                    arms.push(a);
                }
                let ident: String =
                    rest.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
                current = Some((ident, String::new()));
            }
        }
        if let Some((_, body)) = &mut current {
            body.push_str(line);
            body.push('\n');
        }
    }
    if let Some(a) = current.take() {
        arms.push(a);
    }
    arms
}

// ---------------------------------------------------------------------------
// Passes
// ---------------------------------------------------------------------------

const REQUEST_RS: &str = "crates/proto/src/request.rs";
const EVENT_RS: &str = "crates/proto/src/event.rs";
const ERROR_RS: &str = "crates/proto/src/error.rs";
const ALIB_ERROR_RS: &str = "crates/alib/src/error.rs";
const DISPATCH_RS: &str = "crates/core/src/dispatch.rs";
const REPLY_RS: &str = "crates/proto/src/reply.rs";
const DESIGN_MD: &str = "DESIGN.md";

/// Opcode tables: every `Request` variant has a write opcode, the read
/// table decodes exactly the same pairs, and opcodes are unique and
/// dense (0..n with no gaps — a gap means a retired opcode that old
/// clients could still send).
pub fn lint_opcode_tables(request_src: &str) -> Vec<Finding> {
    const PASS: &str = "opcode-table";
    let mut out = Vec::new();
    let variants = enum_variants(request_src, "Request");
    if variants.is_empty() {
        out.push(finding(PASS, REQUEST_RS, "could not parse the Request enum".into()));
        return out;
    }
    let write: BTreeMap<String, u32> = write_opcodes(request_src).into_iter().collect();
    let read: BTreeMap<String, u32> =
        read_opcodes(request_src).into_iter().map(|(o, v)| (v, o)).collect();
    for v in &variants {
        if !write.contains_key(v) {
            out.push(finding(PASS, REQUEST_RS, format!("variant {v} has no write opcode")));
        }
        if !read.contains_key(v) {
            out.push(finding(PASS, REQUEST_RS, format!("variant {v} has no read arm")));
        }
    }
    for (v, op) in &write {
        if read.get(v).is_some_and(|r| r != op) {
            out.push(finding(
                PASS,
                REQUEST_RS,
                format!("variant {v} writes opcode {op} but reads {}", read[v]),
            ));
        }
    }
    let mut ops: Vec<u32> = write.values().copied().collect();
    ops.sort_unstable();
    ops.dedup();
    if ops.len() != write.len() {
        out.push(finding(PASS, REQUEST_RS, "duplicate write opcodes".into()));
    }
    for (i, op) in ops.iter().enumerate() {
        if *op != i as u32 {
            out.push(finding(
                PASS,
                REQUEST_RS,
                format!("opcode table has a gap: expected {i}, found {op}"),
            ));
            break;
        }
    }
    out
}

/// Dispatch exhaustiveness: every `Request` variant appears as a match
/// arm in `core::dispatch`. The compiler enforces this only while the
/// match has no catch-all; the lint keeps enforcing it if one appears.
pub fn lint_dispatch_exhaustive(request_src: &str, dispatch_src: &str) -> Vec<Finding> {
    const PASS: &str = "dispatch-exhaustive";
    let mut out = Vec::new();
    let handled: BTreeSet<String> =
        dispatch_arms(dispatch_src).into_iter().map(|(v, _)| v).collect();
    for v in enum_variants(request_src, "Request") {
        if !handled.contains(&v) {
            out.push(finding(
                PASS,
                DISPATCH_RS,
                format!("request {v} has no dispatch arm"),
            ));
        }
    }
    out
}

/// Reply coverage: a request is marked `has_reply` iff its dispatch arm
/// can produce `Ok(Some(reply))`. Drift in either direction deadlocks
/// or desynchronises clients, which block on replies by sequence number.
pub fn lint_reply_coverage(request_src: &str, dispatch_src: &str) -> Vec<Finding> {
    const PASS: &str = "reply-coverage";
    let mut out = Vec::new();
    let declared = reply_variants(request_src);
    for (variant, body) in dispatch_arms(dispatch_src) {
        let produces = body.contains("Ok(Some(");
        if declared.contains(&variant) && !produces {
            out.push(finding(
                PASS,
                DISPATCH_RS,
                format!("{variant} is declared has_reply but its arm never replies"),
            ));
        }
        if !declared.contains(&variant) && produces {
            out.push(finding(
                PASS,
                DISPATCH_RS,
                format!("{variant} replies but is not declared has_reply"),
            ));
        }
    }
    out
}

/// Event emission: every `Event` variant is constructed somewhere in the
/// server. An unemitted event is dead protocol surface — clients can
/// select for it but it never arrives.
pub fn lint_event_emission(event_src: &str, server_files: &[(String, String)]) -> Vec<Finding> {
    const PASS: &str = "event-emission";
    let mut out = Vec::new();
    let mut emitted = BTreeSet::new();
    for (_, text) in server_files {
        emitted.extend(qualified_idents(text, "Event"));
    }
    for v in enum_variants(event_src, "Event") {
        if !emitted.contains(&v) {
            out.push(finding(
                PASS,
                EVENT_RS,
                format!("event {v} is never emitted by the server"),
            ));
        }
    }
    out
}

/// Error-code coverage: the `ErrorCode` enum, its `ALL` table and its
/// `Display` impl list the same codes; every code is actually raised by
/// the server; and the client library's classification
/// (`alib::error`) mentions every code.
pub fn lint_error_codes(
    error_src: &str,
    server_files: &[(String, String)],
    alib_error_src: &str,
) -> Vec<Finding> {
    const PASS: &str = "error-coverage";
    let mut out = Vec::new();
    let variants: BTreeSet<String> =
        enum_variants(error_src, "ErrorCode").into_iter().collect();
    if variants.is_empty() {
        out.push(finding(PASS, ERROR_RS, "could not parse the ErrorCode enum".into()));
        return out;
    }
    // Skip the `[ErrorCode; N]` type annotation: extract from the `=`.
    let all: BTreeSet<String> = error_src
        .find("const ALL")
        .and_then(|at| delim_block_after(&error_src[at..], "=", '[', ']'))
        .map(|b| qualified_idents(b, "ErrorCode"))
        .unwrap_or_default();
    let display: BTreeSet<String> = block_after(error_src, "Display for ErrorCode")
        .map(|b| qualified_idents(b, "ErrorCode"))
        .unwrap_or_default();
    let mut raised = BTreeSet::new();
    for (_, text) in server_files {
        raised.extend(qualified_idents(text, "ErrorCode"));
    }
    for v in &variants {
        if !all.contains(v) {
            out.push(finding(PASS, ERROR_RS, format!("{v} missing from ErrorCode::ALL")));
        }
        if !display.contains(v) {
            out.push(finding(PASS, ERROR_RS, format!("{v} missing from Display")));
        }
        if !raised.contains(v) {
            out.push(finding(PASS, ERROR_RS, format!("{v} is never raised by the server")));
        }
        if !alib_error_src.contains(v.as_str()) {
            out.push(finding(
                PASS,
                ALIB_ERROR_RS,
                format!("{v} is not classified by alib::error"),
            ));
        }
    }
    for v in all.difference(&variants) {
        out.push(finding(PASS, ERROR_RS, format!("ALL lists unknown code {v}")));
    }
    out
}

/// Documentation rows: every request opcode has a row in DESIGN.md's
/// opcode table with the right opcode number and reply flag.
pub fn lint_doc_rows(request_src: &str, design: &str) -> Vec<Finding> {
    const PASS: &str = "doc-rows";
    let mut out = Vec::new();
    // Parse `| N | `Variant` | yes/– | ... |` rows anywhere in the doc.
    let mut rows: BTreeMap<String, (u32, bool)> = BTreeMap::new();
    for line in design.lines() {
        let t = line.trim();
        if !t.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = t.trim_matches('|').split('|').map(str::trim).collect();
        if cells.len() < 3 {
            continue;
        }
        let Ok(op) = cells[0].parse::<u32>() else { continue };
        let name = cells[1].trim_matches('`').to_string();
        rows.insert(name, (op, cells[2].eq_ignore_ascii_case("yes")));
    }
    let declared = reply_variants(request_src);
    for (variant, op) in write_opcodes(request_src) {
        match rows.get(&variant) {
            None => out.push(finding(
                PASS,
                DESIGN_MD,
                format!("request {variant} (opcode {op}) has no doc row"),
            )),
            Some(&(doc_op, doc_reply)) => {
                if doc_op != op {
                    out.push(finding(
                        PASS,
                        DESIGN_MD,
                        format!("{variant} documented as opcode {doc_op}, actual {op}"),
                    ));
                }
                if doc_reply != declared.contains(&variant) {
                    out.push(finding(
                        PASS,
                        DESIGN_MD,
                        format!("{variant} reply flag documented wrongly"),
                    ));
                }
            }
        }
    }
    out
}

/// `(name, file, line)` for every `counter!`/`gauge!`/`histogram!`
/// registration in the server sources. Names are string literals by
/// construction — the macros take a literal — so a text scan sees them
/// all.
pub fn metric_registrations(server_files: &[(String, String)]) -> Vec<(String, String, usize)> {
    let mut out = Vec::new();
    for (path, text) in server_files {
        for (n, line) in text.lines().enumerate() {
            let code = strip_comment(line);
            for needle in ["counter!(", "gauge!(", "histogram!("] {
                let mut rest = code;
                while let Some(i) = rest.find(needle) {
                    rest = &rest[i + needle.len()..];
                    let Some(q) = rest.find('"') else { break };
                    let after = &rest[q + 1..];
                    let Some(e) = after.find('"') else { break };
                    out.push((after[..e].to_string(), path.clone(), n + 1));
                    rest = &after[e + 1..];
                }
            }
        }
    }
    out
}

/// The lines of the DESIGN.md section whose `## ` heading contains
/// `title`, up to the next `## ` heading. `None` when no such heading
/// exists.
fn design_section_lines<'a>(design: &'a str, title: &str) -> Option<Vec<&'a str>> {
    let mut in_section = false;
    let mut out = Vec::new();
    for line in design.lines() {
        if line.starts_with("## ") {
            if in_section {
                break;
            }
            in_section = line.contains(title);
            continue;
        }
        if in_section {
            out.push(line);
        }
    }
    in_section.then_some(out)
}

/// Metric-name coverage: every registered metric name is snake_case,
/// registered exactly once, and listed in DESIGN.md's Observability
/// catalog; and every catalog row names a metric that is actually
/// registered. Telemetry without a catalog is write-only — nobody knows
/// a metric exists to look at it.
pub fn lint_metrics_names(server_files: &[(String, String)], design: &str) -> Vec<Finding> {
    const PASS: &str = "metrics-names";
    let mut out = Vec::new();
    let regs = metric_registrations(server_files);
    let is_snake = |s: &str| {
        !s.is_empty()
            && s.chars().next().is_some_and(|c| c.is_ascii_lowercase())
            && s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    };
    let mut by_name: BTreeMap<&str, Vec<&(String, String, usize)>> = BTreeMap::new();
    for r in &regs {
        by_name.entry(r.0.as_str()).or_default().push(r);
    }
    let section = design_section_lines(design, "Observability");
    if section.is_none() && !regs.is_empty() {
        out.push(finding(
            PASS,
            DESIGN_MD,
            "metrics are registered but DESIGN.md has no Observability section".into(),
        ));
    }
    for (name, sites) in &by_name {
        let (_, file, line) = sites[0];
        if !is_snake(name) {
            out.push(finding(PASS, file, format!("line {line}: metric name \"{name}\" is not snake_case")));
        }
        if sites.len() > 1 {
            let places: Vec<String> =
                sites.iter().map(|(_, f, l)| format!("{f}:{l}")).collect();
            out.push(finding(
                PASS,
                file,
                format!("metric \"{name}\" registered {} times ({})", sites.len(), places.join(", ")),
            ));
        }
        if let Some(lines) = &section {
            let tagged = format!("`{name}`");
            if !lines.iter().any(|l| l.contains(&tagged)) {
                out.push(finding(
                    PASS,
                    DESIGN_MD,
                    format!("metric \"{name}\" is not listed in the Observability catalog"),
                ));
            }
        }
    }
    // Catalog rows must correspond to registered metrics.
    for line in section.as_deref().unwrap_or(&[]) {
        let t = line.trim();
        if !t.starts_with('|') {
            continue;
        }
        let Some(first) = t.trim_matches('|').split('|').next() else { continue };
        let cell = first.trim();
        let Some(name) = cell.strip_prefix('`').and_then(|c| c.strip_suffix('`')) else {
            continue;
        };
        if is_snake(name) && name.contains('_') && !by_name.contains_key(name) {
            out.push(finding(
                PASS,
                DESIGN_MD,
                format!("Observability catalog lists \"{name}\" but nothing registers it"),
            ));
        }
    }
    out
}

/// Trace-stage coverage: the `TraceStage::NAMES` taxonomy
/// (`proto/src/reply.rs`), the server's `trace_stage_<name>_us`
/// histogram registrations, and DESIGN.md's "Causal tracing" section
/// must agree in all directions. A stage without a histogram is
/// unattributable latency; a histogram without a stage is a dead metric
/// name; a stage DESIGN.md never mentions is undocumented taxonomy.
pub fn lint_trace_stages(
    proto_files: &[(String, String)],
    server_files: &[(String, String)],
    design: &str,
) -> Vec<Finding> {
    const PASS: &str = "trace-stages";
    let mut out = Vec::new();
    let regs = metric_registrations(server_files);
    let stage_regs: Vec<&(String, String, usize)> = regs
        .iter()
        .filter(|(name, _, _)| name.starts_with("trace_stage_") && name.ends_with("_us"))
        .collect();
    let reply_src = proto_files
        .iter()
        .find(|(path, _)| path.ends_with("reply.rs"))
        .map(|(_, text)| text.as_str())
        .unwrap_or("");
    let names_block = block_containing_names(reply_src);
    let names: Vec<String> = names_block
        .map(|b| {
            b.split('"')
                .skip(1)
                .step_by(2)
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default();
    if names.is_empty() {
        if !stage_regs.is_empty() {
            out.push(finding(
                PASS,
                REPLY_RS,
                "trace_stage_* histograms are registered but TraceStage::NAMES was not found"
                    .into(),
            ));
        }
        return out;
    }
    let section = design_section_lines(design, "Causal tracing");
    if section.is_none() {
        out.push(finding(
            PASS,
            DESIGN_MD,
            "TraceStage exists but DESIGN.md has no Causal tracing section".into(),
        ));
    }
    for name in &names {
        let metric = format!("trace_stage_{name}_us");
        if !stage_regs.iter().any(|(n, _, _)| *n == metric) {
            out.push(finding(
                PASS,
                REPLY_RS,
                format!("stage \"{name}\" has no \"{metric}\" histogram registration"),
            ));
        }
        if let Some(lines) = &section {
            let tagged = format!("`{name}`");
            if !lines.iter().any(|l| l.contains(&tagged)) {
                out.push(finding(
                    PASS,
                    DESIGN_MD,
                    format!("stage \"{name}\" is not documented in the Causal tracing section"),
                ));
            }
        }
    }
    for (metric, file, line) in stage_regs {
        let stage = &metric["trace_stage_".len()..metric.len() - "_us".len()];
        if !names.iter().any(|n| n == stage) {
            out.push(finding(
                PASS,
                file,
                format!(
                    "line {line}: histogram \"{metric}\" names stage \"{stage}\" which is not in TraceStage::NAMES"
                ),
            ));
        }
    }
    out
}

/// The bracket-delimited initializer of `TraceStage::NAMES`, if present.
fn block_containing_names(reply_src: &str) -> Option<&str> {
    let at = reply_src.find("const NAMES")?;
    delim_block_after(&reply_src[at..], "=", '[', ']')
}

/// `unwrap` lint: no bare `.unwrap()` in server code. A panic in the
/// server kills every client's session; recoverable paths must handle
/// the error and justified infallible cases use `.expect("why")` or a
/// `// lint: allow-unwrap` marker.
pub fn lint_unwrap(server_files: &[(String, String)]) -> Vec<Finding> {
    const PASS: &str = "unwrap-in-server";
    let mut out = Vec::new();
    for (path, text) in server_files {
        let mut pending_cfg_test = false;
        for (n, line) in text.lines().enumerate() {
            let t = line.trim();
            if t.starts_with("#[cfg(test)]") {
                pending_cfg_test = true;
                continue;
            }
            if pending_cfg_test {
                if t.starts_with("mod ") || t.starts_with("pub mod ") {
                    // Test module: everything below is test code.
                    break;
                }
                if !t.starts_with("#[") {
                    pending_cfg_test = false;
                }
            }
            let code = strip_comment(line);
            if code.contains(".unwrap()") && !line.contains("lint: allow-unwrap") {
                out.push(finding(
                    PASS,
                    path,
                    format!("bare .unwrap() at line {}", n + 1),
                ));
            }
        }
    }
    out
}

/// The canonical lock acquisition order for the server's locks: the
/// core `RwLock` (read or write) first, then at most one shard stripe.
/// An acquisition against this order (or re-acquiring a held lock) can
/// deadlock under the right interleaving.
pub const LOCK_ORDER: [&str; 2] = ["core", "stripe"];

/// Zero-argument acquisition methods the lock-order lint understands:
/// `.lock()` (mutexes, stripes) and the `RwLock` pair `.read()` /
/// `.write()`. Argument-taking methods like `reply.write(&mut w)` never
/// match because the scan requires the literal `()` call.
const LOCK_CALLS: [&str; 3] = [".lock()", ".read()", ".write()"];

/// How a lock was acquired. The lint models `RwLock` modes explicitly:
/// a read guard and a write guard on the same receiver are different
/// hazards (upgrade deadlock vs. plain re-entrancy), and a stripe taken
/// under the core *write* lock is aliasing-suspect in a way a stripe
/// under the read lock is not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// `.read()` — shared `RwLock` guard.
    Read,
    /// `.write()` — exclusive `RwLock` guard.
    Write,
    /// `.lock()` — plain mutex (stripes).
    Mutex,
}

fn lock_mode(call: &str) -> LockMode {
    match call {
        ".read()" => LockMode::Read,
        ".write()" => LockMode::Write,
        _ => LockMode::Mutex,
    }
}

/// Lock-order lint: within any scope, locks must be taken in
/// [`LOCK_ORDER`] and never re-entrantly, with acquisition *modes*
/// modeled. Flags, beyond plain order inversions: a read→write upgrade
/// on the same receiver (parking_lot `RwLock`s are not upgradable — the
/// write blocks behind the thread's own read guard), and a stripe
/// acquired under the core write lock (the write lock already grants
/// exclusive access to every shard; stripes pair with the read-mode
/// fast path only). Guards are tracked by brace scope; receivers not in
/// the table are ignored.
pub fn lint_lock_order(server_files: &[(String, String)]) -> Vec<Finding> {
    const PASS: &str = "lock-order";
    let mut out = Vec::new();
    let rank = |recv: &str| LOCK_ORDER.iter().position(|&n| n == recv);
    for (path, text) in server_files {
        // Held guards: (rank, mode, depth the binding lives at).
        let mut held: Vec<(usize, LockMode, i32)> = Vec::new();
        let mut depth = 0i32;
        for (n, line) in text.lines().enumerate() {
            let code = strip_comment(line);
            let is_binding = code.trim_start().starts_with("let ");
            let mut rest = code;
            while let Some((i, call)) = LOCK_CALLS
                .iter()
                .filter_map(|c| rest.find(c).map(|i| (i, *c)))
                .min_by_key(|&(i, _)| i)
            {
                // The receiver is the path segment right before the call.
                let recv: String = rest[..i]
                    .chars()
                    .rev()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect::<Vec<_>>()
                    .into_iter()
                    .rev()
                    .collect();
                rest = &rest[i + call.len()..];
                let Some(r) = rank(&recv) else { continue };
                let mode = lock_mode(call);
                if let Some(&(_, held_mode, _)) = held.iter().find(|&&(hr, _, _)| hr == r) {
                    if held_mode == LockMode::Read && mode == LockMode::Write {
                        out.push(finding(
                            PASS,
                            path,
                            format!(
                                "line {}: read->write upgrade hazard: {recv}.write() while a \
                                 {recv} read guard is held (RwLocks are not upgradable; the \
                                 write blocks behind this thread's own read guard)",
                                n + 1,
                            ),
                        ));
                    } else {
                        out.push(finding(
                            PASS,
                            path,
                            format!(
                                "line {}: {recv} acquired while {recv} is already held \
                                 (re-entrant acquisition deadlocks)",
                                n + 1,
                            ),
                        ));
                    }
                } else {
                    if let Some(&(top, _, _)) = held.last() {
                        if r <= top {
                            out.push(finding(
                                PASS,
                                path,
                                format!(
                                    "line {}: {recv} acquired while {} is held (canonical \
                                     order: {})",
                                    n + 1,
                                    LOCK_ORDER[top],
                                    LOCK_ORDER.join(" -> "),
                                ),
                            ));
                        }
                    }
                    if LOCK_ORDER[r] == "stripe"
                        && held.iter().any(|&(hr, m, _)| {
                            LOCK_ORDER[hr] == "core" && m == LockMode::Write
                        })
                    {
                        out.push(finding(
                            PASS,
                            path,
                            format!(
                                "line {}: stripe acquired under the core write lock — the \
                                 write lock already grants exclusive shard access; stripes \
                                 pair with the read-mode fast path only",
                                n + 1,
                            ),
                        ));
                    }
                }
                if is_binding {
                    // Guard lives to the end of the enclosing block;
                    // temporaries die within the statement.
                    held.push((r, mode, depth + brace_delta(line)));
                }
            }
            depth += brace_delta(line);
            held.retain(|&(_, _, d)| d <= depth);
        }
    }
    out
}

/// Narrowing casts the `casts` pass flags: `value as <ty>` can silently
/// truncate, and in wire paths a wrapped length or tag desynchronises the
/// codec on the other end.
const NARROWING_CASTS: [&str; 6] = [" as u8", " as u16", " as u32", " as i8", " as i16", " as i32"];

/// Cast lint: no unchecked `as` integer narrowing in the wire paths
/// (`crates/proto/src/*.rs` and `crates/core/src/dispatch.rs`).
///
/// Lossless conversions should use `From`; fallible ones `TryFrom` with
/// an explicit policy. Justified casts (fieldless-enum discriminants,
/// values bounded by construction) carry a `// cast-ok: <reason>` marker
/// on the same line. Test modules are skipped.
pub fn lint_casts(wire_files: &[(String, String)]) -> Vec<Finding> {
    const PASS: &str = "casts";
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut out = Vec::new();
    for (path, text) in wire_files {
        let mut pending_cfg_test = false;
        for (n, line) in text.lines().enumerate() {
            let t = line.trim();
            if t.starts_with("#[cfg(test)]") {
                pending_cfg_test = true;
                continue;
            }
            if pending_cfg_test {
                if t.starts_with("mod ") || t.starts_with("pub mod ") {
                    // Test module: everything below is test code.
                    break;
                }
                if !t.starts_with("#[") {
                    pending_cfg_test = false;
                }
            }
            if line.contains("cast-ok:") {
                continue;
            }
            let code = strip_comment(line);
            for pat in NARROWING_CASTS {
                for (i, _) in code.match_indices(pat) {
                    // Require a token boundary after the type name so
                    // ` as u32` does not also match ` as u32x4` etc.
                    let end = i + pat.len();
                    if code[end..].chars().next().is_some_and(is_ident) {
                        continue;
                    }
                    out.push(finding(
                        PASS,
                        path,
                        format!(
                            "line {}: unchecked narrowing `{}` — use From/TryFrom or \
                             annotate `// cast-ok: <reason>`",
                            n + 1,
                            pat.trim_start(),
                        ),
                    ));
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Runs every pass over the given sources.
pub fn run_all(s: &Sources) -> Vec<Finding> {
    let mut out = Vec::new();
    out.extend(lint_opcode_tables(&s.request));
    out.extend(lint_dispatch_exhaustive(&s.request, &s.dispatch));
    out.extend(lint_reply_coverage(&s.request, &s.dispatch));
    out.extend(lint_event_emission(&s.event, &s.server_files));
    out.extend(lint_error_codes(&s.error, &s.server_files, &s.alib_error));
    out.extend(lint_doc_rows(&s.request, &s.design));
    out.extend(lint_metrics_names(&s.server_files, &s.design));
    out.extend(lint_trace_stages(&s.proto_files, &s.server_files, &s.design));
    out.extend(lint_unwrap(&s.server_files));
    out.extend(lint_unwrap(&s.alib_files));
    out.extend(lint_lock_order(&s.server_files));
    let mut wire_files = s.proto_files.clone();
    wire_files.push((DISPATCH_RS.to_string(), s.dispatch.clone()));
    out.extend(lint_casts(&wire_files));
    out
}

/// Parses the allowlist: one `pass-name: message-substring` entry per
/// line, `#` comments. A finding is suppressed when its pass matches and
/// its message contains the substring.
pub fn parse_allowlist(text: &str) -> Vec<(String, String)> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (pass, rest) = l.split_once(':')?;
            Some((pass.trim().to_string(), rest.trim().to_string()))
        })
        .collect()
}

/// Drops findings matched by the allowlist.
pub fn apply_allowlist(findings: Vec<Finding>, allow: &[(String, String)]) -> Vec<Finding> {
    findings
        .into_iter()
        .filter(|f| {
            !allow
                .iter()
                .any(|(pass, sub)| f.pass == pass && f.message.contains(sub.as_str()))
        })
        .collect()
}

/// Lints the workspace at `root`, applying its allowlist.
pub fn run_workspace_lint(root: &Path) -> io::Result<Vec<Finding>> {
    let sources = Sources::load(root)?;
    let allow = match fs::read_to_string(root.join("crates/xtask/lint-allow.txt")) {
        Ok(text) => parse_allowlist(&text),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    Ok(apply_allowlist(run_all(&sources), &allow))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature, self-consistent protocol: two requests, one reply,
    /// one event, one error code. Tests break one table at a time and
    /// assert the right pass notices.
    const REQUEST_OK: &str = r#"
pub enum Request {
    Ping { id: u32 },
    QueryThing { id: u32 },
}

impl Request {
    pub fn has_reply(&self) -> bool {
        matches!(self, Request::QueryThing { .. })
    }
}

impl WireWrite for Request {
    fn write(&self, w: &mut WireWriter) {
        match self {
            Request::Ping { id } => {
                w.u8(0);
                w.u32(*id);
            }
            Request::QueryThing { id } => {
                w.u8(1);
                w.u32(*id);
            }
        }
    }
}

impl WireRead for Request {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.u8()? {
            0 => Request::Ping { id: r.u32()? },
            1 => {
                Request::QueryThing { id: r.u32()? }
            }
            n => return Err(CodecError::BadOpcode(n)),
        })
    }
}
"#;

    const DISPATCH_OK: &str = r#"
fn execute(core: &mut Core, request: &Request) -> DispatchResult {
    match request {
        Request::Ping { id } => {
            core.ping(*id);
            Ok(None)
        }
        Request::QueryThing { id } => {
            Ok(Some(Reply::Thing { id: *id }))
        }
    }
}
"#;

    const EVENT_OK: &str = r#"
pub enum Event {
    Pong { id: u32 },
    ThingChanged { id: u32 },
}
"#;

    const ERROR_OK: &str = r#"
pub enum ErrorCode {
    BadThing,
    ThingBusy,
}

impl ErrorCode {
    const ALL: [ErrorCode; 2] = [ErrorCode::BadThing, ErrorCode::ThingBusy];
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorCode::BadThing => "bad thing",
            ErrorCode::ThingBusy => "thing busy",
        };
        f.write_str(s)
    }
}
"#;

    fn server_emitting_everything() -> Vec<(String, String)> {
        vec![(
            "crates/core/src/engine.rs".into(),
            "fn go(core: &mut Core) {\n    core.send(Event::Pong { id: 1 });\n    core.send(Event::ThingChanged { id: 2 });\n    core.fail(ErrorCode::BadThing);\n    core.fail(ErrorCode::ThingBusy);\n}\n"
                .into(),
        )]
    }

    #[test]
    fn consistent_fixture_is_clean() {
        assert_eq!(lint_opcode_tables(REQUEST_OK), Vec::new());
        assert_eq!(lint_dispatch_exhaustive(REQUEST_OK, DISPATCH_OK), Vec::new());
        assert_eq!(lint_reply_coverage(REQUEST_OK, DISPATCH_OK), Vec::new());
        assert_eq!(lint_event_emission(EVENT_OK, &server_emitting_everything()), Vec::new());
        assert_eq!(
            lint_error_codes(ERROR_OK, &server_emitting_everything(), "BadThing ThingBusy"),
            Vec::new()
        );
    }

    #[test]
    fn removed_dispatch_arm_is_found() {
        // The acceptance case: an opcode removed from core::dispatch.
        let broken = DISPATCH_OK.replace("Request::QueryThing { id } => {", "_ => {");
        let findings = lint_dispatch_exhaustive(REQUEST_OK, &broken);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("QueryThing"));
    }

    #[test]
    fn unemitted_event_is_found() {
        let files = vec![(
            "crates/core/src/engine.rs".into(),
            "fn go(core: &mut Core) { core.send(Event::Pong { id: 1 }); }".into(),
        )];
        let findings = lint_event_emission(EVENT_OK, &files);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("ThingChanged"));
    }

    #[test]
    fn commented_out_emission_does_not_count() {
        let files = vec![(
            "crates/core/src/engine.rs".into(),
            "fn go(core: &mut Core) {\n    core.send(Event::Pong { id: 1 });\n    // core.send(Event::ThingChanged { id: 2 });\n}"
                .into(),
        )];
        assert_eq!(lint_event_emission(EVENT_OK, &files).len(), 1);
    }

    #[test]
    fn opcode_gaps_and_mismatches_are_found() {
        // Write table skips opcode 1 (retired opcode shape).
        let gap = REQUEST_OK.replace("w.u8(1);", "w.u8(2);");
        assert!(lint_opcode_tables(&gap)
            .iter()
            .any(|f| f.message.contains("gap") || f.message.contains("reads")));
        // Read table decodes QueryThing under the wrong opcode.
        let skew = REQUEST_OK.replace("1 => {", "3 => {");
        assert!(!lint_opcode_tables(&skew).is_empty());
        // A variant dropped from the write table entirely.
        let missing = REQUEST_OK.replace("w.u8(1);", "");
        assert!(lint_opcode_tables(&missing)
            .iter()
            .any(|f| f.message.contains("QueryThing")));
    }

    #[test]
    fn reply_drift_is_found_both_ways() {
        // Arm stops replying but stays declared.
        let silent = DISPATCH_OK.replace("Ok(Some(Reply::Thing { id: *id }))", "Ok(None)");
        let findings = lint_reply_coverage(REQUEST_OK, &silent);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("never replies"));
        // Arm replies without being declared.
        let undeclared =
            REQUEST_OK.replace("matches!(self, Request::QueryThing { .. })", "false");
        let findings = lint_reply_coverage(&undeclared, DISPATCH_OK);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("not declared"));
    }

    #[test]
    fn error_table_drift_is_found() {
        let no_display = ERROR_OK.replace("ErrorCode::ThingBusy => \"thing busy\",", "");
        assert!(lint_error_codes(&no_display, &server_emitting_everything(), "BadThing ThingBusy")
            .iter()
            .any(|f| f.message.contains("ThingBusy") && f.message.contains("Display")));
        let no_all = ERROR_OK.replace(", ErrorCode::ThingBusy]", "]");
        assert!(lint_error_codes(&no_all, &server_emitting_everything(), "BadThing ThingBusy")
            .iter()
            .any(|f| f.message.contains("ALL")));
        // The client library misses a classification.
        assert!(lint_error_codes(ERROR_OK, &server_emitting_everything(), "BadThing only")
            .iter()
            .any(|f| f.message.contains("ThingBusy") && f.message.contains("alib")));
    }

    #[test]
    fn doc_rows_checked_against_tables() {
        let design = "\
| Op | Request | Reply | Purpose |
|----|---------|-------|---------|
| 0 | `Ping` | – | liveness |
| 1 | `QueryThing` | yes | lookup |
";
        assert_eq!(lint_doc_rows(REQUEST_OK, design), Vec::new());
        let missing = design.replace("| 1 | `QueryThing` | yes | lookup |\n", "");
        assert!(lint_doc_rows(REQUEST_OK, &missing)[0].message.contains("no doc row"));
        let wrong_op = design.replace("| 1 | `QueryThing`", "| 9 | `QueryThing`");
        assert!(lint_doc_rows(REQUEST_OK, &wrong_op)[0].message.contains("documented as"));
        let wrong_reply = design.replace("| `QueryThing` | yes", "| `QueryThing` | –");
        assert!(lint_doc_rows(REQUEST_OK, &wrong_reply)[0].message.contains("reply flag"));
    }

    #[test]
    fn metrics_names_checked_against_catalog() {
        let files = vec![(
            "crates/core/src/telem.rs".to_string(),
            "fn build(reg: &Registry) {\n    let a = counter!(reg, \"dispatch_requests_total\");\n    let b = gauge!(reg, \"queue_depth\");\n    let c = histogram!(reg, \"engine_tick_us\");\n}\n"
                .to_string(),
        )];
        let design = "\
## 10. Observability

| Metric | Kind | Meaning |
|--------|------|---------|
| `dispatch_requests_total` | counter | requests |
| `queue_depth` | gauge | depth |
| `engine_tick_us` | histogram | tick time |
";
        assert_eq!(lint_metrics_names(&files, design), Vec::new());
        // A registered metric missing from the catalog.
        let missing = design.replace("| `queue_depth` | gauge | depth |\n", "");
        assert!(lint_metrics_names(&files, &missing)
            .iter()
            .any(|f| f.message.contains("queue_depth") && f.message.contains("not listed")));
        // A catalog row nothing registers.
        let stale = format!("{design}| `ghost_metric_total` | counter | gone |\n");
        assert!(lint_metrics_names(&files, &stale)
            .iter()
            .any(|f| f.message.contains("ghost_metric_total")
                && f.message.contains("nothing registers")));
        // The same name registered twice.
        let mut dup = files.clone();
        dup.push((
            "crates/core/src/engine.rs".to_string(),
            "fn again(reg: &Registry) { let d = gauge!(reg, \"queue_depth\"); }\n".to_string(),
        ));
        assert!(lint_metrics_names(&dup, design)
            .iter()
            .any(|f| f.message.contains("registered 2 times")));
        // Names must be snake_case.
        let bad = vec![(
            "crates/core/src/telem.rs".to_string(),
            "fn b(reg: &Registry) { let x = counter!(reg, \"BadName\"); }\n".to_string(),
        )];
        assert!(lint_metrics_names(&bad, "## 10. Observability\n\ntext\n")
            .iter()
            .any(|f| f.message.contains("not snake_case")));
        // Registrations with no catalog section at all.
        assert!(lint_metrics_names(&files, "## 8. Wire protocol\n\ntext\n")
            .iter()
            .any(|f| f.message.contains("no Observability section")));
    }

    #[test]
    fn trace_stages_checked_three_ways() {
        let proto = vec![(
            "crates/proto/src/reply.rs".to_string(),
            "impl TraceStage {\n    pub const NAMES: [&'static str; 2] =\n        [\"ingress\", \"drain\"];\n}\n"
                .to_string(),
        )];
        let server = vec![(
            "crates/core/src/telem.rs".to_string(),
            "fn build(reg: &Registry) {\n    let a = histogram!(reg, \"trace_stage_ingress_us\");\n    let b = histogram!(reg, \"trace_stage_drain_us\");\n}\n"
                .to_string(),
        )];
        let design = "\
## 15. Causal tracing & flight recorder

| Stage | Moment |
|-------|--------|
| `ingress` | frame decoded |
| `drain` | frame written |
";
        assert_eq!(lint_trace_stages(&proto, &server, design), Vec::new());
        // A stage with no histogram registration.
        let partial = vec![(
            "crates/core/src/telem.rs".to_string(),
            "fn build(reg: &Registry) { let a = histogram!(reg, \"trace_stage_ingress_us\"); }\n"
                .to_string(),
        )];
        assert!(lint_trace_stages(&proto, &partial, design)
            .iter()
            .any(|f| f.message.contains("drain") && f.message.contains("no")));
        // A histogram naming a stage the taxonomy lacks.
        let mut extra = server.clone();
        extra.push((
            "crates/core/src/telem.rs".to_string(),
            "fn more(reg: &Registry) { let c = histogram!(reg, \"trace_stage_ghost_us\"); }\n"
                .to_string(),
        ));
        assert!(lint_trace_stages(&proto, &extra, design)
            .iter()
            .any(|f| f.message.contains("ghost") && f.message.contains("not in TraceStage")));
        // A stage DESIGN.md never documents.
        let undocumented = design.replace("| `drain` | frame written |\n", "");
        assert!(lint_trace_stages(&proto, &server, &undocumented)
            .iter()
            .any(|f| f.message.contains("drain") && f.message.contains("not documented")));
        // No Causal tracing section at all.
        assert!(lint_trace_stages(&proto, &server, "## 10. Observability\n\ntext\n")
            .iter()
            .any(|f| f.message.contains("no Causal tracing section")));
        // Registrations without a NAMES taxonomy.
        assert!(lint_trace_stages(&[], &server, design)
            .iter()
            .any(|f| f.message.contains("NAMES was not found")));
        // No taxonomy and no registrations: nothing to check.
        assert_eq!(lint_trace_stages(&[], &[], design), Vec::new());
    }

    #[test]
    fn unwrap_lint_flags_bare_unwrap_only() {
        let files = vec![(
            "crates/core/src/engine.rs".into(),
            "fn f(x: Option<u32>) -> u32 {\n    let a = x.unwrap();\n    let b = x.expect(\"checked above\");\n    let c = x.unwrap(); // lint: allow-unwrap - test hook\n    let d = x.unwrap_or(0);\n    a + b + c + d\n}\n#[cfg(test)]\nmod tests {\n    fn g(x: Option<u32>) -> u32 { x.unwrap() }\n}\n"
                .into(),
        )];
        let findings = lint_unwrap(&files);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("line 2"));
    }

    #[test]
    fn lock_order_inversion_is_found() {
        let ok = "fn f(&self) {\n    let mut core = self.core.write();\n    core.tick();\n}\nfn g(&self) {\n    let core = self.core.read();\n    let _stripe = stripe.lock();\n    core.peek();\n}\nfn h(&self) {\n    self.stripe.lock();\n    let mut core = self.core.write();\n    core.tick();\n}\n";
        // f: write lock alone; g: canonical core -> stripe; h: the
        // stripe guard is a temporary, dead before core is locked.
        assert_eq!(lint_lock_order(&[("s.rs".into(), ok.into())]), Vec::new());
        let bad = "fn g(&self) {\n    let _stripe = self.stripe.lock();\n    let mut core = self.core.write();\n    core.tick();\n}\n";
        let findings = lint_lock_order(&[("s.rs".into(), bad.into())]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("core acquired while stripe"));
        // The guard dies with its block: no finding across scopes.
        let scoped = "fn g(&self) {\n    {\n        let _stripe = self.stripe.lock();\n    }\n    let mut core = self.core.write();\n    core.tick();\n}\n";
        assert_eq!(lint_lock_order(&[("s.rs".into(), scoped.into())]), Vec::new());
        // Wire-codec `.write(&mut w)` calls take arguments: never matched.
        let wire = "fn g(&self) {\n    let _stripe = self.stripe.lock();\n    reply.write(&mut w);\n    core.read_frame(&mut buf);\n}\n";
        assert_eq!(lint_lock_order(&[("s.rs".into(), wire.into())]), Vec::new());
    }

    #[test]
    fn lock_mode_modeling_flags_upgrades_and_write_mode_stripes() {
        // Read guard live, then `.write()` on the same receiver: the
        // classic non-upgradable RwLock self-deadlock.
        let upgrade = "fn g(&self) {\n    let c = self.core.read();\n    let mut w = self.core.write();\n    w.tick();\n}\n";
        let findings = lint_lock_order(&[("s.rs".into(), upgrade.into())]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("read->write upgrade hazard"));
        // Write-then-write (and write-then-read) are plain re-entrancy,
        // not upgrades.
        let reentrant = "fn g(&self) {\n    let w = self.core.write();\n    let c = self.core.read();\n    c.peek();\n}\n";
        let findings = lint_lock_order(&[("s.rs".into(), reentrant.into())]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("re-entrant"));
        // A stripe under the core *write* lock is aliasing-suspect even
        // though the order matches the canonical [core, stripe].
        let write_stripe = "fn g(&self) {\n    let mut w = self.core.write();\n    let _s = stripe.lock();\n    w.tick();\n}\n";
        let findings = lint_lock_order(&[("s.rs".into(), write_stripe.into())]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("stripe acquired under the core write lock"));
        // The same stripe under the core *read* lock is the documented
        // fast-path protocol: clean.
        let read_stripe = "fn g(&self) {\n    let c = self.core.read();\n    let _s = stripe.lock();\n    c.peek();\n}\n";
        assert_eq!(lint_lock_order(&[("s.rs".into(), read_stripe.into())]), Vec::new());
    }

    #[test]
    fn allowlist_suppresses_by_pass_and_substring() {
        let allow = parse_allowlist(
            "# comment\n\nevent-emission: ThingChanged  \nunwrap-in-server: engine.rs\n",
        );
        assert_eq!(allow.len(), 2);
        let findings = vec![
            finding("event-emission", EVENT_RS, "event ThingChanged is never emitted".into()),
            finding("event-emission", EVENT_RS, "event Pong is never emitted".into()),
        ];
        let left = apply_allowlist(findings, &allow);
        assert_eq!(left.len(), 1);
        assert!(left[0].message.contains("Pong"));
    }

    #[test]
    fn casts_lint_flags_unmarked_narrowing_only() {
        let files = vec![(
            "crates/proto/src/fixture.rs".to_string(),
            "fn f(n: usize, b: u8) -> u32 {\n\
             \x20   let a = n as u32;\n\
             \x20   let b2 = u32::from(b);\n\
             \x20   let c = n as u32; // cast-ok: bounded by MAX_FRAME_PAYLOAD\n\
             \x20   let d = n as u64;\n\
             \x20   a + b2 + c + (d as u32)\n\
             }\n\
             #[cfg(test)]\n\
             mod tests {\n\
             \x20   fn g(n: usize) -> u8 { n as u8 }\n\
             }\n"
                .to_string(),
        )];
        let findings = lint_casts(&files);
        // Lines 2 and 6 are flagged; the cast-ok line, the widening to
        // u64, and the test module are not.
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().all(|f| f.pass == "casts"));
        assert!(findings[0].message.contains("line 2"));
        assert!(findings[1].message.contains("line 6"));
    }

    #[test]
    fn casts_lint_respects_token_boundaries() {
        let files = vec![(
            "crates/proto/src/fixture.rs".to_string(),
            "fn f(v: V) -> u32x4 { v as u32x4 }\n".to_string(),
        )];
        assert!(lint_casts(&files).is_empty());
    }

    /// The real workspace must lint clean: this is the tree the passes
    /// were written against, and any drift from here on is a regression
    /// (or a new allowlist entry with a written justification).
    #[test]
    fn workspace_is_lint_clean() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root");
        let findings = run_workspace_lint(root).expect("workspace readable");
        for f in &findings {
            eprintln!("{f}");
        }
        assert!(findings.is_empty());
    }
}
