//! Concurrency soundness lints (`cargo run -p xtask -- races`).
//!
//! PR 6 introduced the repo's first real `unsafe` concurrency: the
//! `UnsafeCell`-backed `ShardedMap` whose soundness rests on the
//! documented read-lock + stripe protocol, and a fast dispatch path
//! whose own-shard whitelist is hand-maintained against the full opcode
//! table. These passes turn that prose protocol into machine-checked
//! rules (DESIGN.md §14):
//!
//! - **safety-comment** — every `unsafe` keyword in the server crates
//!   must carry a `// SAFETY:` comment (or sit under a `# Safety` doc
//!   section) justifying it.
//! - **shard-guard** — every `ShardedMap::shard_mut` / `ShardView::new`
//!   call site must either live in an `unsafe fn` (which forwards the
//!   obligation to *its* callers via `# Safety`, themselves checked) or
//!   be lexically preceded, in the same function, by the documented
//!   `core.read()` + stripe `.lock()` acquisitions — the `[core,
//!   stripe]` LOCK_ORDER in acquisition order. Raw `UnsafeCell` storage
//!   is confined to `shard.rs`.
//! - **fastpath-whitelist** — the `eligible()` whitelist, the
//!   `exec_fast` match arms, and the per-opcode [`Footprint`] touches
//!   table must agree exactly: every whitelisted opcode is proven
//!   single-shard (`Own`/`Global`) by the table, every `Cross` opcode
//!   punts, and every `Request` variant has a row.
//! - plus the mode-aware **lock-order** pass shared with `xtask lint`
//!   (read→write upgrade hazards, stripes under the core write lock).
//!
//! Same conventions as the `lint` passes: text-level scanning so the
//! self-tests can lint deliberately broken fixture strings, and an
//! allowlist (`crates/xtask/races-allow.txt`) that is empty at merge.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::Path;

use crate::{
    apply_allowlist, block_after, brace_delta, delim_block_after, enum_variants, finding,
    has_word, lint_lock_order, parse_allowlist, qualified_idents, strip_comment, Finding, Sources,
};

/// Pass `safety-comment`: every `unsafe` block, fn, or impl must be
/// justified in place. The justification is a `SAFETY:` marker on the
/// same line, in the comment/attribute run immediately above, or a
/// `# Safety` section in the doc comment (for `unsafe fn`, whose
/// contract is caller-facing). Test modules are scanned too — a wrong
/// safety argument is no less wrong under `#[cfg(test)]`.
pub fn lint_safety_comments(server_files: &[(String, String)]) -> Vec<Finding> {
    const PASS: &str = "safety-comment";
    let mut out = Vec::new();
    for (path, text) in server_files {
        let lines: Vec<&str> = text.lines().collect();
        for (n, raw) in lines.iter().enumerate() {
            let code = strip_comment(raw);
            if !has_word(code, "unsafe") {
                continue;
            }
            // A trailing comment on the same line may carry it.
            if raw.contains("SAFETY:") {
                continue;
            }
            // Walk upward through the contiguous run of comments, doc
            // comments, attributes, and blank lines.
            let mut justified = false;
            let mut i = n;
            while i > 0 {
                i -= 1;
                let t = lines[i].trim_start();
                let is_context = t.starts_with("//") || t.starts_with("#[") || t.is_empty();
                if t.contains("SAFETY:") || t.contains("# Safety") {
                    justified = true;
                    break;
                }
                if !is_context {
                    break;
                }
            }
            if !justified {
                out.push(finding(
                    PASS,
                    path,
                    format!(
                        "line {}: `unsafe` without a SAFETY: comment (or `# Safety` \
                         doc section) justifying it",
                        n + 1,
                    ),
                ));
            }
        }
    }
    out
}

/// The two entry points into the aliased-shard world.
const SHARD_ENTRIES: [&str; 2] = ["shard_mut(", "ShardView::new("];

/// Pass `shard-guard`: call sites of [`SHARD_ENTRIES`] must be guarded.
/// A site is accepted when its enclosing function is itself `unsafe`
/// (the obligation is forwarded, and the forwarding fn's own call sites
/// are checked in turn), or when the function lexically acquires
/// `core.read()` and then a stripe `.lock()` before the call — the
/// documented `[core, stripe]` protocol. `UnsafeCell` storage outside
/// `shard.rs` is flagged unconditionally: there must be exactly one
/// raw-pointer substrate. `#[cfg(test)]` modules are exempt — tests
/// exercise the maps single-threaded, including deliberate misuse the
/// sanitizer tests *rely* on.
pub fn lint_shard_guard(server_files: &[(String, String)]) -> Vec<Finding> {
    const PASS: &str = "shard-guard";
    let mut out = Vec::new();
    for (path, text) in server_files {
        let in_shard_rs = path.ends_with("shard.rs");
        let mut depth = 0i32;
        // Enclosing fn: (is_unsafe, body depth floor, saw core.read,
        // saw stripe lock after the read).
        let mut cur: Option<(bool, i32, bool, bool)> = None;
        let mut pending_cfg_test = false;
        for (n, line) in text.lines().enumerate() {
            let t = line.trim_start();
            if t.starts_with("#[cfg(test)]") {
                pending_cfg_test = true;
            } else if pending_cfg_test {
                if t.starts_with("mod ") || t.starts_with("pub mod ") {
                    // Everything below is the test module; done with
                    // this file.
                    break;
                }
                if !t.starts_with("#[") {
                    pending_cfg_test = false;
                }
            }
            let code = strip_comment(line);
            if !in_shard_rs && code.contains("UnsafeCell") {
                out.push(finding(
                    PASS,
                    path,
                    format!(
                        "line {}: UnsafeCell outside shard.rs — the raw-pointer \
                         substrate must stay confined to the audited ShardedMap",
                        n + 1,
                    ),
                ));
            }
            let is_fn_header = has_word(code, "fn") && code.contains('(');
            if is_fn_header {
                cur = Some((has_word(code, "unsafe"), depth, false, false));
            } else if let Some((is_unsafe, _, saw_read, saw_stripe)) = cur.as_mut() {
                let guarded_read = code.contains("core.read()");
                let guarded_stripe =
                    *saw_read && code.contains(".lock()") && code.contains("stripe");
                if guarded_read {
                    *saw_read = true;
                }
                if guarded_stripe {
                    *saw_stripe = true;
                }
                for entry in SHARD_ENTRIES {
                    if code.contains(entry) && !(*is_unsafe || (*saw_read && *saw_stripe)) {
                        out.push(finding(
                            PASS,
                            path,
                            format!(
                                "line {}: `{entry}..)` outside an `unsafe fn` and without \
                                 a preceding core.read() + stripe .lock() in the same \
                                 function (documented [core, stripe] protocol)",
                                n + 1,
                            ),
                        ));
                    }
                }
            }
            depth += brace_delta(line);
            if let Some((_, floor, _, _)) = cur {
                if depth <= floor {
                    cur = None;
                }
            }
        }
    }
    out
}

/// Rows of the `OPCODE_TOUCHES` table: `(variant name, footprint)`.
/// Duplicate variants are preserved so the caller can flag them.
fn parse_touches(fastpath_src: &str) -> Vec<(String, String)> {
    let Some(at) = fastpath_src.find("OPCODE_TOUCHES") else {
        return Vec::new();
    };
    let Some(block) = delim_block_after(&fastpath_src[at..], "=", '[', ']') else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for line in block.lines() {
        let code = strip_comment(line);
        let Some(open) = code.find('"') else { continue };
        let Some(close) = code[open + 1..].find('"') else { continue };
        let name = code[open + 1..open + 1 + close].to_string();
        let Some(fp_at) = code.find("Footprint::") else { continue };
        let fp: String = code[fp_at + "Footprint::".len()..]
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        out.push((name, fp));
    }
    out
}

/// Pass `fastpath-whitelist`: the single-shard proof obligation. Every
/// `Request` variant must have exactly one `OPCODE_TOUCHES` row; the
/// `eligible()` whitelist must be exactly the `Own` ∪ `Global` rows;
/// and `exec_fast` must have an arm for exactly the whitelisted
/// variants (anything else silently hits the `_ => Punt` catch-all and
/// rots, or is dead code).
pub fn lint_fastpath_whitelist(request_src: &str, fastpath_src: &str) -> Vec<Finding> {
    const PASS: &str = "fastpath-whitelist";
    const FILE: &str = "crates/core/src/fastpath.rs";
    let mut out = Vec::new();
    let variants: BTreeSet<String> = enum_variants(request_src, "Request").into_iter().collect();
    if variants.is_empty() {
        out.push(finding(PASS, FILE, "could not parse the Request enum".into()));
        return out;
    }
    let Some(elig) = block_after(fastpath_src, "fn eligible") else {
        out.push(finding(PASS, FILE, "no `fn eligible` found".into()));
        return out;
    };
    let whitelist = qualified_idents(elig, "Request");
    let Some(exec) = block_after(fastpath_src, "fn exec_fast") else {
        out.push(finding(PASS, FILE, "no `fn exec_fast` found".into()));
        return out;
    };
    let arms = qualified_idents(exec, "Request");
    let rows = parse_touches(fastpath_src);
    if rows.is_empty() {
        out.push(finding(PASS, FILE, "no OPCODE_TOUCHES table found".into()));
        return out;
    }
    let mut table: BTreeMap<String, String> = BTreeMap::new();
    for (name, fp) in rows {
        if !variants.contains(&name) {
            out.push(finding(
                PASS,
                FILE,
                format!("OPCODE_TOUCHES row `{name}` names no Request variant"),
            ));
            continue;
        }
        if table.insert(name.clone(), fp).is_some() {
            out.push(finding(PASS, FILE, format!("duplicate OPCODE_TOUCHES row `{name}`")));
        }
    }
    for v in &variants {
        match table.get(v).map(String::as_str) {
            None => out.push(finding(
                PASS,
                FILE,
                format!("Request::{v} has no OPCODE_TOUCHES row — classify its footprint"),
            )),
            Some(fp @ ("Own" | "Global")) => {
                if !whitelist.contains(v) {
                    out.push(finding(
                        PASS,
                        FILE,
                        format!(
                            "Request::{v} is classified Footprint::{fp} but missing from \
                             the eligible() whitelist (fast path left on the table, or \
                             the classification is wrong)"
                        ),
                    ));
                }
            }
            Some(fp) => {
                if whitelist.contains(v) {
                    out.push(finding(
                        PASS,
                        FILE,
                        format!(
                            "Request::{v} is whitelisted in eligible() but classified \
                             Footprint::{fp} — cross-shard work under the read lock \
                             is unsound"
                        ),
                    ));
                }
            }
        }
    }
    for v in &whitelist {
        if !arms.contains(v) {
            out.push(finding(
                PASS,
                FILE,
                format!(
                    "Request::{v} is whitelisted but exec_fast has no arm for it \
                     (silent `_ => Punt` drift)"
                ),
            ));
        }
    }
    for v in &arms {
        if !whitelist.contains(v) {
            out.push(finding(
                PASS,
                FILE,
                format!("exec_fast handles Request::{v} but eligible() never admits it"),
            ));
        }
    }
    out
}

/// Runs every concurrency soundness pass over `s`, including the
/// mode-aware lock-order pass shared with `xtask lint`.
pub fn run_races(s: &Sources) -> Vec<Finding> {
    let mut out = Vec::new();
    out.extend(lint_safety_comments(&s.server_files));
    out.extend(lint_shard_guard(&s.server_files));
    out.extend(lint_lock_order(&s.server_files));
    let fastpath = s
        .server_files
        .iter()
        .find(|(p, _)| p.ends_with("fastpath.rs"))
        .map(|(_, t)| t.as_str())
        .unwrap_or_default();
    out.extend(lint_fastpath_whitelist(&s.request, fastpath));
    out
}

/// Lints the workspace at `root`, applying the races allowlist
/// (`crates/xtask/races-allow.txt` — empty at merge; every future entry
/// must be commented).
pub fn run_workspace_races(root: &Path) -> io::Result<Vec<Finding>> {
    let sources = Sources::load(root)?;
    let allow = match fs::read_to_string(root.join("crates/xtask/races-allow.txt")) {
        Ok(text) => parse_allowlist(&text),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    Ok(apply_allowlist(run_races(&sources), &allow))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn files(text: &str) -> Vec<(String, String)> {
        vec![("crates/core/src/fixture.rs".to_string(), text.to_string())]
    }

    #[test]
    fn safety_comment_required_on_unsafe() {
        let bare = "fn f(m: &ShardedMap<u32, u32>) {\n    let v = unsafe { m.shard_mut(0) };\n    drop(v);\n}\n";
        let findings = lint_safety_comments(&files(bare));
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("line 2"));
        assert!(findings[0].message.contains("SAFETY"));
        // A SAFETY: comment above (with attributes in between) passes.
        let above = "fn f(m: &M) {\n    // SAFETY: stripe 0 held by caller.\n    #[allow(unused)]\n    let v = unsafe { m.shard_mut(0) };\n}\n";
        assert_eq!(lint_safety_comments(&files(above)), Vec::new());
        // A trailing comment on the same line passes.
        let trailing = "unsafe impl Send for M {} // SAFETY: plain data.\n";
        assert_eq!(lint_safety_comments(&files(trailing)), Vec::new());
        // A `# Safety` doc section covers an `unsafe fn` header.
        let doc = "/// # Safety\n///\n/// Caller holds the stripe.\npub unsafe fn shard_mut(&self) {}\n";
        assert_eq!(lint_safety_comments(&files(doc)), Vec::new());
        // The lookback stops at real code: a SAFETY comment for an
        // *earlier* statement does not leak downward.
        let stale = "// SAFETY: for the call below only.\nlet a = unsafe { one() };\nlet b = unsafe { two() };\n";
        let findings = lint_safety_comments(&files(stale));
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("line 3"));
    }

    #[test]
    fn shard_guard_requires_protocol_or_unsafe_fn() {
        // Broken fixture: shard_mut with no guards in sight.
        let bare = "fn f(core: &RwLock<Core>) {\n    let c = core.read();\n    let v = unsafe { c.louds.shard_mut(0) };\n}\n";
        let findings = lint_shard_guard(&files(bare));
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("shard_mut"));
        assert!(findings[0].message.contains("[core, stripe]"));
        // The documented protocol, in order, passes.
        let guarded = "fn f(core: &RwLock<Core>) {\n    let c = core.read();\n    let _stripe = c.stripes.stripe(0).lock();\n    let v = unsafe { ShardView::new(&c, 0) };\n}\n";
        assert_eq!(lint_shard_guard(&files(guarded)), Vec::new());
        // Stripe before read is NOT the protocol: the stripe must be
        // taken under the read lock.
        let reversed = "fn f(core: &RwLock<Core>) {\n    let _stripe = stripes.stripe(0).lock();\n    let c = core.read();\n    let v = unsafe { ShardView::new(&c, 0) };\n}\n";
        assert_eq!(lint_shard_guard(&files(reversed)).len(), 1);
        // An unsafe fn forwards the obligation to its callers.
        let forwarded = "pub unsafe fn new(core: &Core) -> Self {\n    Self { louds: core.louds.shard_mut(0) }\n}\n";
        assert_eq!(lint_shard_guard(&files(forwarded)), Vec::new());
        // Guards from one fn don't leak into the next.
        let two_fns = "fn a(core: &RwLock<Core>) {\n    let c = core.read();\n    let _s = stripe.lock();\n}\nfn b(c: &Core) {\n    let v = unsafe { c.louds.shard_mut(0) };\n}\n";
        assert_eq!(lint_shard_guard(&files(two_fns)).len(), 1);
    }

    #[test]
    fn shard_guard_confines_unsafecell_and_skips_tests() {
        let cell = "struct Sneaky {\n    inner: UnsafeCell<u32>,\n}\n";
        let findings = lint_shard_guard(&files(cell));
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("UnsafeCell"));
        // ...but shard.rs is the audited home for it.
        let home = vec![("crates/core/src/shard.rs".to_string(), cell.to_string())];
        assert_eq!(lint_shard_guard(&home), Vec::new());
        // Test modules are exempt: single-threaded, deliberate misuse.
        let test_mod = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    fn f(m: &M) {\n        let v = unsafe { m.shard_mut(0) };\n    }\n}\n";
        assert_eq!(lint_shard_guard(&files(test_mod)), Vec::new());
    }

    const REQUEST_FIXTURE: &str = "pub enum Request {\n    Ping { id: u32 },\n    QueryThing { id: u32 },\n    DestroyAll { id: u32 },\n}\n";

    const FASTPATH_FIXTURE: &str = r#"
pub const OPCODE_TOUCHES: &[(&str, Footprint, &str)] = &[
    ("Ping", Footprint::Global, "no state touched"),
    ("QueryThing", Footprint::Own, "own-shard read"),
    ("DestroyAll", Footprint::Cross, "sweeps every shard"),
];

fn eligible(client: ClientId, request: &Request) -> bool {
    match request {
        Request::Ping { .. } => true,
        Request::QueryThing { id } => owns_id(client, *id),
        _ => false,
    }
}

fn exec_fast(view: &mut ShardView, request: &Request) -> FastOutcome {
    match request {
        Request::Ping { .. } => Done(Ok(None)),
        Request::QueryThing { id } => Done(Ok(Some(Reply::Thing { id: *id }))),
        _ => Punt,
    }
}
"#;

    #[test]
    fn fastpath_whitelist_clean_fixture_passes() {
        assert_eq!(lint_fastpath_whitelist(REQUEST_FIXTURE, FASTPATH_FIXTURE), Vec::new());
    }

    #[test]
    fn fastpath_whitelist_catches_each_mismatch() {
        // A variant with no touches row.
        let missing_row = FASTPATH_FIXTURE
            .replace("    (\"QueryThing\", Footprint::Own, \"own-shard read\"),\n", "");
        let findings = lint_fastpath_whitelist(REQUEST_FIXTURE, &missing_row);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("QueryThing has no OPCODE_TOUCHES row"));
        // Whitelisted but classified Cross: the unsound direction.
        let cross = FASTPATH_FIXTURE.replace(
            "(\"QueryThing\", Footprint::Own",
            "(\"QueryThing\", Footprint::Cross",
        );
        let findings = lint_fastpath_whitelist(REQUEST_FIXTURE, &cross);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("cross-shard work under the read lock"));
        // Classified Own but never whitelisted: fast path on the table.
        let own = FASTPATH_FIXTURE.replace(
            "(\"DestroyAll\", Footprint::Cross",
            "(\"DestroyAll\", Footprint::Own",
        );
        let findings = lint_fastpath_whitelist(REQUEST_FIXTURE, &own);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("missing from the eligible() whitelist"));
        // Whitelisted without an exec_fast arm: silent Punt drift.
        let drift = FASTPATH_FIXTURE.replace(
            "        Request::QueryThing { id } => Done(Ok(Some(Reply::Thing { id: *id }))),\n",
            "",
        );
        let findings = lint_fastpath_whitelist(REQUEST_FIXTURE, &drift);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("silent `_ => Punt` drift"));
        // A row naming a ghost variant, and a duplicate row.
        let ghost = FASTPATH_FIXTURE.replace(
            "    (\"Ping\", Footprint::Global, \"no state touched\"),\n",
            "    (\"Ping\", Footprint::Global, \"no state touched\"),\n    (\"Ping\", Footprint::Global, \"again\"),\n    (\"Ghost\", Footprint::Own, \"not real\"),\n",
        );
        let findings = lint_fastpath_whitelist(REQUEST_FIXTURE, &ghost);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().any(|f| f.message.contains("duplicate")));
        assert!(findings.iter().any(|f| f.message.contains("Ghost")));
    }

    /// The real tree must lint clean with an *empty* allowlist — the
    /// acceptance bar for the soundness pass.
    #[test]
    fn workspace_is_races_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root");
        let allow_path = root.join("crates/xtask/races-allow.txt");
        if allow_path.exists() {
            let allow = fs::read_to_string(&allow_path).expect("read races-allow.txt");
            assert_eq!(
                parse_allowlist(&allow),
                Vec::new(),
                "races-allow.txt must stay empty: fix the code, not the lint"
            );
        }
        let findings = run_workspace_races(root).expect("workspace sources load");
        assert_eq!(findings, Vec::new(), "races lint must pass on the real tree");
    }
}
