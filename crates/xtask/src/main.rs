//! Workspace automation.
//!
//! - `cargo run -p xtask -- lint` — the workspace consistency lints;
//!   exits non-zero if any finding survives the allowlist.
//! - `cargo run -p xtask -- races` — the concurrency soundness lints
//!   over the sharded connection plane (SAFETY comments, stripe-guard
//!   protocol, mode-aware lock order, fastpath whitelist proof); exits
//!   non-zero if any finding survives `races-allow.txt`.
//! - `cargo run -p xtask -- rtsafe` — the real-time-safety lints: call
//!   graphs from the declared RT entry points (engine tick, fast-path
//!   exec, outbound drain) are taint-checked for allocation, blocking,
//!   and unbounded-work sinks, with a bidirectionally-verified
//!   `// rt-ok:` justification grammar; exits non-zero if any finding
//!   survives `rtsafe-allow.txt`.
//! - `cargo run -p xtask -- interleave [--budget N] [--seed N] [--fault NAME] [--require N]`
//!   — the deterministic connplane interleaving explorer; exits
//!   non-zero and prints a minimized, replayable schedule on an oracle
//!   breach (or, with `--require`, when fewer than N distinct
//!   interleavings were explored).
//! - `cargo run -p xtask -- explore [--budget N] [--depth N] [--seed-topology NAME]`
//!   — the bounded model checker over the queue/activation state machine;
//!   exits non-zero and prints a minimized, replayable counterexample on
//!   an invariant violation.
//! - `cargo run -p xtask -- fuzz [--iters N] [--seed N] [--corpus-out DIR]`
//!   — the structure-aware wire-codec fuzzer; exits non-zero on a
//!   property violation, and with `--corpus-out` (re)writes the seed
//!   corpus plus any failing inputs as corpus files.
//! - `cargo run -p xtask -- soak [--seed N] [--iters N] [--concurrency N] [--workers N]`
//!   — fault-injected client churn against a live in-process server
//!   (`--iters` = client sessions); exits non-zero on any invariant
//!   violation, leaked client, engine stall, or — at 100+ sessions —
//!   if fewer than all five fault kinds were actually injected.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use da_modelcheck::explore::{explore, Config};
use da_modelcheck::fuzz::{fuzz, seed_corpus, FuzzConfig};
use da_modelcheck::sched::{explore_interleavings, SchedConfig, SchedFault};
use da_modelcheck::soak::{soak, SoakConfig};
use da_modelcheck::Seed;

fn workspace_root() -> PathBuf {
    // xtask lives at <root>/crates/xtask.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask sits two levels under the workspace root")
        .to_path_buf()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(),
        Some("races") => run_races(),
        Some("rtsafe") => run_rtsafe(),
        Some("explore") => run_explore(&args[1..]),
        Some("interleave") => run_interleave(&args[1..]),
        Some("fuzz") => run_fuzz(&args[1..]),
        Some("soak") => run_soak(&args[1..]),
        other => {
            eprintln!(
                "usage: cargo run -p xtask -- <lint | races | rtsafe | explore | interleave | \
                 fuzz | soak> [options]"
            );
            if let Some(cmd) = other {
                eprintln!("unknown command: {cmd}");
            }
            ExitCode::FAILURE
        }
    }
}

fn run_lint() -> ExitCode {
    let root = workspace_root();
    match xtask::run_workspace_lint(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("lint: workspace is consistent");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                eprintln!("{f}");
            }
            eprintln!("lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("lint: cannot read workspace at {}: {e}", root.display());
            ExitCode::FAILURE
        }
    }
}

fn run_races() -> ExitCode {
    let root = workspace_root();
    match xtask::races::run_workspace_races(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("races: the stripe protocol, lock modes, and fastpath whitelist check out");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                eprintln!("{f}");
            }
            eprintln!("races: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("races: cannot read workspace at {}: {e}", root.display());
            ExitCode::FAILURE
        }
    }
}

fn run_rtsafe() -> ExitCode {
    let root = workspace_root();
    match xtask::rtsafe::run_workspace_rtsafe(&root) {
        Ok(findings) if findings.is_empty() => {
            println!(
                "rtsafe: every RT-reachable path is allocation/block/loop-clean or justified"
            );
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                eprintln!("{f}");
            }
            eprintln!("rtsafe: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("rtsafe: cannot read workspace at {}: {e}", root.display());
            ExitCode::FAILURE
        }
    }
}

/// Parses `--flag value` pairs from `args`; returns `None` (after
/// printing a diagnostic) on an unknown flag or missing/bad value.
fn parse_flags(args: &[String], known: &[&str]) -> Option<Vec<(String, String)>> {
    let mut out = Vec::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if !known.contains(&flag.as_str()) {
            eprintln!("unknown option: {flag} (expected one of {})", known.join(", "));
            return None;
        }
        let Some(value) = it.next() else {
            eprintln!("option {flag} needs a value");
            return None;
        };
        out.push((flag.clone(), value.clone()));
    }
    Some(out)
}

fn run_explore(args: &[String]) -> ExitCode {
    let Some(flags) = parse_flags(args, &["--budget", "--depth", "--seed-topology"]) else {
        return ExitCode::FAILURE;
    };
    let mut cfg = Config::default();
    for (flag, value) in flags {
        match flag.as_str() {
            "--budget" => match value.parse() {
                Ok(n) => cfg.max_states = n,
                Err(_) => return bad_value(&flag, &value),
            },
            "--depth" => match value.parse() {
                Ok(n) => cfg.max_depth = n,
                Err(_) => return bad_value(&flag, &value),
            },
            _ => match Seed::ALL.iter().find(|s| s.name() == value) {
                Some(&s) => cfg.seeds = vec![s],
                None => return bad_value(&flag, &value),
            },
        }
    }
    let report = explore(&cfg);
    for run in &report.seeds {
        println!(
            "explore[{}]: {} states, {} transitions, depth {} reached",
            run.seed.name(),
            run.states,
            run.transitions,
            run.depth_reached,
        );
    }
    println!(
        "explore: {} states total in {:.2}s ({:.0} states/sec), {} replayed actions",
        report.states(),
        report.elapsed.as_secs_f64(),
        report.states_per_sec(),
        report.replayed_actions(),
    );
    let counterexamples = report.counterexamples();
    if counterexamples.is_empty() {
        println!("explore: all invariants hold within the budget");
        ExitCode::SUCCESS
    } else {
        for cx in counterexamples {
            eprintln!("{}", cx.render());
        }
        ExitCode::FAILURE
    }
}

fn run_interleave(args: &[String]) -> ExitCode {
    let Some(flags) = parse_flags(args, &["--budget", "--seed", "--fault", "--require"]) else {
        return ExitCode::FAILURE;
    };
    let mut cfg = SchedConfig::default();
    let mut require = 0u64;
    for (flag, value) in flags {
        match flag.as_str() {
            "--budget" => match value.parse() {
                Ok(n) => cfg.budget = n,
                Err(_) => return bad_value(&flag, &value),
            },
            "--seed" => match value.parse() {
                Ok(n) => cfg.seed = n,
                Err(_) => return bad_value(&flag, &value),
            },
            "--fault" => {
                cfg.fault = match value.as_str() {
                    "none" => SchedFault::None,
                    "wrong-stripe" => SchedFault::WrongStripe,
                    "read-upgrade" => SchedFault::ReadUpgrade,
                    _ => return bad_value(&flag, &value),
                }
            }
            _ => match value.parse() {
                Ok(n) => require = n,
                Err(_) => return bad_value(&flag, &value),
            },
        }
    }
    let report = explore_interleavings(&cfg);
    println!(
        "interleave[{}]: {} distinct interleavings (seed {}), deepest schedule {} steps",
        cfg.fault.name(),
        report.interleavings,
        cfg.seed,
        report.deepest,
    );
    if let Some(cx) = &report.counterexample {
        eprintln!("{}", cx.render());
        return ExitCode::FAILURE;
    }
    if report.interleavings < require {
        eprintln!(
            "interleave: only {} distinct interleavings explored (require {require})",
            report.interleavings,
        );
        return ExitCode::FAILURE;
    }
    println!("interleave: all oracles hold across every explored schedule");
    ExitCode::SUCCESS
}

fn run_fuzz(args: &[String]) -> ExitCode {
    let Some(flags) = parse_flags(args, &["--iters", "--seed", "--corpus-out"]) else {
        return ExitCode::FAILURE;
    };
    let mut cfg = FuzzConfig::default();
    let mut corpus_out: Option<PathBuf> = None;
    for (flag, value) in flags {
        match flag.as_str() {
            "--iters" => match value.parse() {
                Ok(n) => cfg.iters = n,
                Err(_) => return bad_value(&flag, &value),
            },
            "--seed" => match value.parse() {
                Ok(n) => cfg.seed = n,
                Err(_) => return bad_value(&flag, &value),
            },
            _ => corpus_out = Some(PathBuf::from(value)),
        }
    }
    let report = fuzz(&cfg);
    println!(
        "fuzz: {} iterations (seed {}): {} round-trips, {} mutations ({} rejected), \
         {} dispatches",
        report.iters, cfg.seed, report.roundtrips, report.mutations, report.rejected,
        report.dispatches,
    );
    if let Some(dir) = corpus_out {
        if let Err(e) = write_corpus(&dir, &report.failures) {
            eprintln!("fuzz: cannot write corpus to {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    if report.clean() {
        println!("fuzz: all properties hold");
        ExitCode::SUCCESS
    } else {
        for f in &report.failures {
            eprintln!("fuzz[{}]: {}", f.name, f.detail);
        }
        eprintln!("fuzz: {} violation(s)", report.failures.len());
        ExitCode::FAILURE
    }
}

fn run_soak(args: &[String]) -> ExitCode {
    let known = ["--seed", "--iters", "--concurrency", "--workers", "--require-sanitizer"];
    let Some(flags) = parse_flags(args, &known) else {
        return ExitCode::FAILURE;
    };
    let mut cfg = SoakConfig::default();
    let mut require_sanitizer = false;
    for (flag, value) in flags {
        match flag.as_str() {
            "--seed" => match value.parse() {
                Ok(n) => cfg.seed = n,
                Err(_) => return bad_value(&flag, &value),
            },
            "--iters" => match value.parse() {
                Ok(n) => cfg.sessions = n,
                Err(_) => return bad_value(&flag, &value),
            },
            "--workers" => match value.parse() {
                Ok(n) => cfg.workers = n,
                Err(_) => return bad_value(&flag, &value),
            },
            "--require-sanitizer" => match value.parse() {
                Ok(b) => require_sanitizer = b,
                Err(_) => return bad_value(&flag, &value),
            },
            _ => match value.parse() {
                Ok(n) => cfg.concurrency = n,
                Err(_) => return bad_value(&flag, &value),
            },
        }
    }
    let report = soak(&cfg);
    if require_sanitizer && !report.sanitizer_active {
        eprintln!(
            "soak: the shard borrow sanitizer is compiled out of this build — \
             run the debug profile (--require-sanitizer expects debug_assertions)"
        );
        return ExitCode::FAILURE;
    }
    println!(
        "soak: shard borrow sanitizer {}",
        if report.sanitizer_active { "active" } else { "compiled out (release)" },
    );
    println!(
        "soak: {} sessions (seed {}): {} completed, {} cut short by faults",
        report.sessions, cfg.seed, report.completed_ok, report.died_early,
    );
    println!(
        "soak: {} faults injected across {} kind(s); {} event(s) dropped, \
         {} client(s) evicted, {} engine ticks",
        report.total_faults(),
        report.kinds_seen(),
        report.events_dropped,
        report.clients_evicted,
        report.engine_ticks,
    );
    // At CI scale every fault kind has thousands of chances to fire; all
    // five missing means the injector itself regressed.
    let starved = report.sessions >= 100 && report.kinds_seen() < 5;
    if starved {
        eprintln!(
            "soak: only {} of 5 fault kinds injected over {} sessions",
            report.kinds_seen(),
            report.sessions,
        );
    }
    if report.clean() && !starved {
        println!("soak: all invariants hold, no clients leaked");
        ExitCode::SUCCESS
    } else {
        for v in &report.violations {
            eprintln!("soak: {v}");
        }
        ExitCode::FAILURE
    }
}

/// Writes the deterministic seed corpus plus any fuzzer-found failing
/// inputs into `dir` as corpus-format files.
fn write_corpus(dir: &Path, failures: &[da_modelcheck::fuzz::Failure]) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut written = 0usize;
    for (name, bytes) in seed_corpus() {
        std::fs::write(dir.join(name), bytes)?;
        written += 1;
    }
    for (i, f) in failures.iter().enumerate() {
        std::fs::write(dir.join(format!("fail-{}-{i}.bin", f.name)), &f.corpus_bytes)?;
        written += 1;
    }
    println!("fuzz: wrote {written} corpus file(s) to {}", dir.display());
    Ok(())
}

fn bad_value(flag: &str, value: &str) -> ExitCode {
    eprintln!("bad value for {flag}: {value}");
    ExitCode::FAILURE
}
