//! `cargo run -p xtask -- lint`: run the workspace consistency lints
//! and exit non-zero if any finding survives the allowlist.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // xtask lives at <root>/crates/xtask.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask sits two levels under the workspace root")
        .to_path_buf()
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {}
        other => {
            eprintln!("usage: cargo run -p xtask -- lint");
            if let Some(cmd) = other {
                eprintln!("unknown command: {cmd}");
            }
            return ExitCode::FAILURE;
        }
    }
    let root = workspace_root();
    match xtask::run_workspace_lint(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("lint: workspace is consistent");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                eprintln!("{f}");
            }
            eprintln!("lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("lint: cannot read workspace at {}: {e}", root.display());
            ExitCode::FAILURE
        }
    }
}
