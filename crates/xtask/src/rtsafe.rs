//! Real-time-safety lints (`cargo run -p xtask -- rtsafe`).
//!
//! The engine lives or dies by per-tick deadlines: a missed device
//! buffer refill is an audible underrun (paper §6). PR 1 proved the
//! steady-state tick allocation-free *dynamically*, on one route shape;
//! these passes prove the property *statically*, for every reachable
//! path, in the PR 2/PR 7 analyzer lineage (DESIGN.md §16):
//!
//! - **rt-entries** — the declared RT entry-point table
//!   ([`RT_ENTRIES`]) is cross-checked against the sources: an entry
//!   whose function no longer exists is a rotted table, and fails.
//! - **rt-alloc / rt-block / rt-unbounded** — a text-level call graph
//!   is extracted over `crates/core`, `crates/dsp` and `crates/hw`;
//!   reachability is computed from each entry, carrying that entry's
//!   *sink-class mask* (the tick must not allocate, block, or loop
//!   unboundedly; the fast path and the outbound drain allocate by
//!   design — replies and frames — but must never block or spin).
//!   Every line of every reachable function is then scanned for
//!   classified sinks: allocation (`Box::new`, `with_capacity`,
//!   `vec![`, `.collect(..)`, `format!`, `.to_string()`, `.to_vec()`,
//!   `.to_owned()`, `.push(..)`, `.clone()`), blocking (`.lock()`,
//!   `.read()`, `.write()`, channel `.send(..)`/`.recv(..)`,
//!   `thread::sleep`, `std::fs`, console printing), and unbounded work
//!   (the `loop` keyword — `for`/`while` over engine state are bounded
//!   by that state's size and the per-tick command budget).
//! - **rt-marker** — the justification grammar. A flagged line may
//!   carry `// rt-ok: <reason>`; a function whose whole body is
//!   justified (the plan rebuilder, command installation) may carry
//!   `// rt-ok(fn): <reason>` on or immediately above its header.
//!   Markers are checked *bidirectionally*: a marker on a line (or
//!   function) the passes would not flag is stale and fails, as does
//!   an empty reason. Every accepted `rt-ok` in the engine pairs with
//!   an `AllocRelax` scope so the debug-build sentinel
//!   (`da_server::rt`) enforces the same boundary at runtime.
//!
//! Same conventions as `lint` and `races`: text-level scanning so the
//! self-tests can lint deliberately broken fixture strings, and an
//! allowlist (`crates/xtask/rtsafe-allow.txt`) that is empty at merge.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fs;
use std::io;
use std::path::Path;

use crate::{
    apply_allowlist, brace_delta, finding, has_word, parse_allowlist, strip_comment, Finding,
    Sources,
};

/// Sink class: heap allocation.
pub const ALLOC: u8 = 1;
/// Sink class: blocking (locks, channels, I/O, sleeps).
pub const BLOCK: u8 = 2;
/// Sink class: unbounded work.
pub const UNBOUNDED: u8 = 4;

/// One declared real-time entry point.
pub struct RtEntry {
    /// Path suffix of the file declaring the function.
    pub file: &'static str,
    /// The function's name.
    pub func: &'static str,
    /// Which sink classes are forbidden on paths from this entry.
    pub classes: u8,
}

/// The RT entry-point table (DESIGN.md §16). Masks differ by contract:
/// the engine tick must be allocation-free in steady state, while the
/// fast path and the outbound drain allocate by design (replies,
/// resources, wire frames) but run under the read lock / on the I/O
/// worker loop and must never block or spin.
pub const RT_ENTRIES: &[RtEntry] = &[
    RtEntry {
        file: "core/src/engine.rs",
        func: "tick",
        classes: ALLOC | BLOCK | UNBOUNDED,
    },
    RtEntry { file: "core/src/fastpath.rs", func: "exec_fast", classes: BLOCK | UNBOUNDED },
    RtEntry { file: "core/src/connplane.rs", func: "drain_outbound", classes: BLOCK | UNBOUNDED },
];

/// Allocation sinks, matched as substrings of comment-stripped code.
const ALLOC_SINKS: &[&str] = &[
    "Box::new(",
    "with_capacity(",
    "vec![",
    ".to_vec()",
    ".collect(",
    ".collect::<",
    "format!(",
    ".to_string()",
    ".to_owned()",
    ".push(",
    ".clone()",
];

/// Blocking sinks. `.lock()`/`.read()`/`.write()` are the literal
/// zero-argument lock acquisitions (an argumentful `.write(buf)` is
/// I/O-trait plumbing, not a lock); `.send(`/`.recv(` deliberately do
/// *not* match their non-blocking `.try_send(`/`.try_recv(` cousins.
const BLOCK_SINKS: &[&str] = &[
    ".lock()",
    ".read()",
    ".write()",
    ".send(",
    ".recv(",
    "thread::sleep",
    "std::fs::",
    "println!(",
    "eprintln!(",
];

const PASS_ENTRIES: &str = "rt-entries";
const PASS_ALLOC: &str = "rt-alloc";
const PASS_BLOCK: &str = "rt-block";
const PASS_UNBOUNDED: &str = "rt-unbounded";
const PASS_MARKER: &str = "rt-marker";

/// One function extracted from a scanned file.
struct FnRec {
    /// Index into the scanned file list.
    file: usize,
    name: String,
    /// The `impl` type the function sits in, if any.
    owner: Option<String>,
    /// Body lines as `(1-based line number, raw text)`, header included.
    lines: Vec<(usize, String)>,
    /// `// rt-ok(fn): <reason>` attached to the header, if any.
    fn_marker: Option<(usize, String)>,
}

/// The `impl` target type of an `impl ...` header line, if it is one.
fn impl_type(code: &str) -> Option<String> {
    let t = code.trim_start();
    let t = t.strip_prefix("unsafe ").unwrap_or(t);
    let mut rest = t.strip_prefix("impl")?;
    if rest.starts_with(|c: char| c.is_alphanumeric() || c == '_') {
        return None; // an identifier like `implementation`
    }
    // Skip the generic parameter list, if any.
    if let Some(r) = rest.trim_start().strip_prefix('<') {
        let mut depth = 1i32;
        let mut end = None;
        for (i, c) in r.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(i + 1);
                        break;
                    }
                }
                _ => {}
            }
        }
        rest = &r[end?..];
    }
    let rest = match rest.find(" for ") {
        Some(i) => &rest[i + 5..],
        None => rest,
    };
    // Last path segment of the type, up to its own generics.
    let head = rest.trim_start().split('{').next().unwrap_or("").trim();
    let head = head.split('<').next().unwrap_or("").trim();
    let name = head.rsplit("::").next().unwrap_or("").trim();
    let ident: String =
        name.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
    if ident.is_empty() {
        None
    } else {
        Some(ident)
    }
}

/// The declared function's name, if `code` is a `fn` header line.
fn fn_header_name(code: &str) -> Option<String> {
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut start = 0;
    while let Some(i) = code[start..].find("fn") {
        let at = start + i;
        start = at + 2;
        let before_ok = !code[..at].chars().next_back().is_some_and(is_ident);
        let after_ok = !code[at + 2..].chars().next().is_some_and(is_ident);
        if !(before_ok && after_ok) {
            continue;
        }
        let rest = code[at + 2..].trim_start();
        let name: String = rest.chars().take_while(|c| is_ident(*c)).collect();
        if name.is_empty() {
            continue; // `fn(u32) -> u32` function-pointer type
        }
        let after = rest[name.len()..].trim_start();
        if after.starts_with('(') || after.starts_with('<') {
            return Some(name);
        }
    }
    None
}

/// A call site: how the callee was named decides how it resolves.
enum Callee {
    /// `helper(..)` — a free function.
    Free(String),
    /// `x.method(..)` — a method of any scanned type.
    Method(String),
    /// `Type::method(..)` — a method of exactly that type.
    Qualified(String, String),
    /// `Self::method(..)` — a method of the caller's own impl type.
    SelfQual(String),
}

const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "in", "as", "move", "fn", "let", "else",
    "await", "ref", "mut", "dyn", "impl", "where", "unsafe", "pub", "use", "crate", "super",
];

/// Extracts every call site on one comment-stripped line.
fn calls_on_line(code: &str, out: &mut Vec<Callee>) {
    let b = code.as_bytes();
    let ident = |c: u8| c.is_ascii_alphanumeric() || c == b'_';
    for (i, &c) in b.iter().enumerate() {
        if c != b'(' {
            continue;
        }
        let mut s = i;
        while s > 0 && ident(b[s - 1]) {
            s -= 1;
        }
        if s == i || b[s].is_ascii_digit() {
            continue;
        }
        let name = &code[s..i];
        if KEYWORDS.contains(&name) {
            continue;
        }
        if name.starts_with(|c: char| c.is_ascii_uppercase()) {
            continue; // tuple-struct / enum-variant constructor
        }
        if s > 0 && b[s - 1] == b'.' {
            out.push(Callee::Method(name.to_string()));
        } else if s >= 2 && b[s - 1] == b':' && b[s - 2] == b':' {
            let mut q = s - 2;
            while q > 0 && ident(b[q - 1]) {
                q -= 1;
            }
            let qual = &code[q..s - 2];
            if qual == "Self" {
                out.push(Callee::SelfQual(name.to_string()));
            } else if qual.starts_with(|c: char| c.is_ascii_uppercase()) {
                out.push(Callee::Qualified(qual.to_string(), name.to_string()));
            } else {
                // A module path (`dtmf::dial_string`) — resolve by
                // name alone, as either a free fn or a method.
                out.push(Callee::Free(name.to_string()));
                out.push(Callee::Method(name.to_string()));
            }
        } else {
            out.push(Callee::Free(name.to_string()));
        }
    }
}

/// `// rt-ok(fn): <reason>` on the header line or in the contiguous
/// comment/attribute run immediately above it.
fn find_fn_marker(lines: &[&str], header_idx: usize) -> Option<(usize, String)> {
    let grab = |idx: usize| -> Option<(usize, String)> {
        let at = lines[idx].find("rt-ok(fn):")?;
        Some((idx + 1, lines[idx][at + "rt-ok(fn):".len()..].trim().to_string()))
    };
    if let Some(m) = grab(header_idx) {
        return Some(m);
    }
    let mut i = header_idx;
    while i > 0 {
        i -= 1;
        let t = lines[i].trim_start();
        if !(t.starts_with("//") || t.starts_with("#[") || t.is_empty()) {
            break;
        }
        if let Some(m) = grab(i) {
            return Some(m);
        }
    }
    None
}

/// Parses `files` into function records plus, per file, the number of
/// leading lines that are real (non-`#[cfg(test)]`) code.
fn extract_fns(files: &[(String, String)]) -> (Vec<FnRec>, Vec<usize>) {
    let mut fns = Vec::new();
    let mut cutoffs = Vec::with_capacity(files.len());
    for (fi, (_, text)) in files.iter().enumerate() {
        let lines: Vec<&str> = text.lines().collect();
        let mut cutoff = lines.len();
        let mut depth = 0i32;
        let mut impls: Vec<(String, i32)> = Vec::new();
        let mut cur: Option<FnRec> = None;
        let mut cur_floor = 0i32;
        let mut cur_open = false;
        let mut pending_cfg_test = false;
        for (idx, raw) in lines.iter().enumerate() {
            let t = raw.trim_start();
            if t.starts_with("#[cfg(test)]") {
                pending_cfg_test = true;
            } else if pending_cfg_test {
                if t.starts_with("mod ") || t.starts_with("pub mod ") {
                    // Everything below is the test module.
                    cutoff = idx;
                    break;
                }
                if !t.starts_with("#[") {
                    pending_cfg_test = false;
                }
            }
            let code = strip_comment(raw);
            let before = depth;
            if cur.is_none() || !cur_open {
                if let Some(name) = fn_header_name(code) {
                    cur = Some(FnRec {
                        file: fi,
                        name,
                        owner: impls.last().map(|(t, _)| t.clone()),
                        lines: Vec::new(),
                        fn_marker: find_fn_marker(&lines, idx),
                    });
                    cur_floor = before;
                    cur_open = false;
                }
            }
            if cur.is_none() {
                if let Some(ty) = impl_type(code) {
                    impls.push((ty, before));
                }
            }
            if let Some(f) = cur.as_mut() {
                f.lines.push((idx + 1, (*raw).to_string()));
            }
            depth += brace_delta(raw);
            if cur.is_some() {
                if !cur_open && code.contains('{') {
                    cur_open = true;
                }
                if cur_open {
                    if depth <= cur_floor {
                        fns.extend(cur.take());
                    }
                } else if code.contains(';') && depth <= cur_floor {
                    cur = None; // bodyless declaration (trait signature)
                }
            }
            impls.retain(|(_, d)| depth > *d);
        }
        if cur_open {
            fns.extend(cur.take());
        }
        cutoffs.push(cutoff);
    }
    (fns, cutoffs)
}

/// Runs the reachability passes over `files` with the given entry
/// table. Public so the self-tests can drive small fixture graphs.
pub fn run_rtsafe_files(files: &[(String, String)], entries: &[RtEntry]) -> Vec<Finding> {
    let mut out = Vec::new();
    let (fns, cutoffs) = extract_fns(files);

    // Name-resolution indexes.
    let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut frees: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        if f.owner.is_some() {
            methods.entry(&f.name).or_default().push(i);
        } else {
            frees.entry(&f.name).or_default().push(i);
        }
    }
    // Per-file identifier vocabulary, used to narrow ambiguous
    // dot-call resolution: a `.start()` in a file that never names
    // (or embeds, as in `TypedQueue`) the type `ConnPlane` is not
    // calling `ConnPlane::start`.
    let vocab: Vec<BTreeSet<String>> = files
        .iter()
        .map(|(_, text)| {
            let mut words = BTreeSet::new();
            let mut cur = String::new();
            for ch in text.chars() {
                if ch.is_ascii_alphanumeric() || ch == '_' {
                    cur.push(ch);
                } else if !cur.is_empty() {
                    words.insert(std::mem::take(&mut cur));
                }
            }
            if !cur.is_empty() {
                words.insert(cur);
            }
            words
        })
        .collect();
    let mentions = |file: usize, owner: &str| vocab[file].iter().any(|w| w.contains(owner));

    let resolve =
        |c: &Callee, from_file: usize, from_owner: Option<&str>, into: &mut BTreeSet<usize>| {
            match c {
                Callee::Free(n) => {
                    // An unqualified call binds to the caller's own
                    // module first; only fan out across files when the
                    // name has no local definition.
                    let all: Vec<usize> =
                        frees.get(n.as_str()).into_iter().flatten().copied().collect();
                    let local: Vec<usize> =
                        all.iter().copied().filter(|&i| fns[i].file == from_file).collect();
                    into.extend(if local.is_empty() { all } else { local });
                }
                Callee::Method(n) => {
                    let all: Vec<usize> =
                        methods.get(n.as_str()).into_iter().flatten().copied().collect();
                    let owners: BTreeSet<&str> =
                        all.iter().filter_map(|&i| fns[i].owner.as_deref()).collect();
                    if owners.len() >= 2 {
                        // Ambiguous method name: keep only the impls
                        // whose owner type the calling file mentions,
                        // named outright or embedded (as `Queue` is in
                        // `TypedQueue`). A file that never names the
                        // type `Resampler` is not calling a
                        // `Resampler` method through `.finish()` —
                        // those edges are dropped, and the debug
                        // allocation sentinel backstops anything the
                        // text analysis misses. Unique names resolve
                        // unconditionally: receivers of inferred,
                        // never-written types must keep their edges.
                        into.extend(all.iter().copied().filter(|&i| {
                            fns[i].owner.as_deref().is_some_and(|o| mentions(from_file, o))
                        }));
                    } else {
                        into.extend(all);
                    }
                }
                Callee::Qualified(q, n) => {
                    for &i in methods.get(n.as_str()).into_iter().flatten() {
                        if fns[i].owner.as_deref() == Some(q.as_str()) {
                            into.insert(i);
                        }
                    }
                }
                Callee::SelfQual(n) => {
                    for &i in methods.get(n.as_str()).into_iter().flatten() {
                        if fns[i].owner.as_deref() == from_owner
                            && fns[i].file == from_file
                        {
                            into.insert(i);
                        }
                    }
                }
            }
        };

    // Per-function callee sets.
    let mut callees: Vec<BTreeSet<usize>> = Vec::with_capacity(fns.len());
    let mut scratch = Vec::new();
    for f in &fns {
        let mut set = BTreeSet::new();
        for (_, raw) in &f.lines {
            scratch.clear();
            calls_on_line(strip_comment(raw), &mut scratch);
            for c in &scratch {
                resolve(c, f.file, f.owner.as_deref(), &mut set);
            }
        }
        callees.push(set);
    }

    // Seed reachability from the entry table, carrying class masks.
    let mut reach: Vec<u8> = vec![0; fns.len()];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for e in entries {
        let seeds: Vec<usize> = fns
            .iter()
            .enumerate()
            .filter(|(_, f)| files[f.file].0.ends_with(e.file) && f.name == e.func)
            .map(|(i, _)| i)
            .collect();
        if seeds.is_empty() {
            out.push(finding(
                PASS_ENTRIES,
                e.file,
                format!(
                    "RT entry `{}` not found in source — the entry table has rotted",
                    e.func
                ),
            ));
        }
        for i in seeds {
            if reach[i] | e.classes != reach[i] {
                reach[i] |= e.classes;
                queue.push_back(i);
            }
        }
    }
    let mut pred: Vec<Option<usize>> = vec![None; fns.len()];
    while let Some(i) = queue.pop_front() {
        let mask = reach[i];
        for &j in &callees[i] {
            if reach[j] | mask != reach[j] {
                if reach[j] == 0 {
                    pred[j] = Some(i);
                }
                reach[j] |= mask;
                queue.push_back(j);
            }
        }
    }
    if std::env::var("RTSAFE_DEBUG").is_ok() {
        for (i, f) in fns.iter().enumerate() {
            if reach[i] == 0 {
                continue;
            }
            let mut chain = format!("{}::{}", files[f.file].0, f.name);
            let mut at = i;
            while let Some(p) = pred[at] {
                chain = format!("{}::{} -> {chain}", files[fns[p].file].0, fns[p].name);
                at = p;
            }
            eprintln!("reach[{:03b}] {chain}", reach[i]);
        }
    }

    // Sink scan over every reachable function, collecting raw hits
    // first so markers can be verified bidirectionally.
    let mut flagged_lines: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut claimed_fn_markers: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (i, f) in fns.iter().enumerate() {
        let mask = reach[i];
        if mask == 0 {
            continue;
        }
        let path = &files[f.file].0;
        let mut fn_hits = 0usize;
        for (n, raw) in &f.lines {
            let code = strip_comment(raw);
            let mut hits: Vec<(&'static str, &str)> = Vec::new();
            if mask & ALLOC != 0 {
                for p in ALLOC_SINKS {
                    if code.contains(p) {
                        hits.push((PASS_ALLOC, p));
                    }
                }
            }
            if mask & BLOCK != 0 {
                for p in BLOCK_SINKS {
                    if code.contains(p) {
                        hits.push((PASS_BLOCK, p));
                    }
                }
            }
            if mask & UNBOUNDED != 0 && has_word(code, "loop") {
                hits.push((PASS_UNBOUNDED, "loop"));
            }
            if hits.is_empty() {
                continue;
            }
            fn_hits += hits.len();
            flagged_lines.insert((f.file, *n));
            if f.fn_marker.is_some() {
                continue; // whole function justified
            }
            if let Some(at) = raw.find("rt-ok:") {
                if raw[at + "rt-ok:".len()..].trim().is_empty() {
                    out.push(finding(
                        PASS_MARKER,
                        path,
                        format!("line {n}: rt-ok marker with an empty reason"),
                    ));
                }
                continue; // justified in place
            }
            for (pass, pat) in hits {
                let what = match pass {
                    PASS_ALLOC => "allocates",
                    PASS_BLOCK => "may block",
                    _ => "unbounded work",
                };
                out.push(finding(
                    pass,
                    path,
                    format!(
                        "line {n}: `{pat}` {what} in `{}`, reachable from an RT entry \
                         — fix it or justify with `// rt-ok: <reason>`",
                        f.name,
                    ),
                ));
            }
        }
        if let Some((mline, reason)) = &f.fn_marker {
            claimed_fn_markers.insert((f.file, *mline));
            if reason.is_empty() {
                out.push(finding(
                    PASS_MARKER,
                    path,
                    format!("line {mline}: rt-ok(fn) marker with an empty reason"),
                ));
            }
            if fn_hits == 0 {
                out.push(finding(
                    PASS_MARKER,
                    path,
                    format!(
                        "line {mline}: stale rt-ok(fn) marker — `{}` has no flagged \
                         sinks; remove the marker",
                        f.name,
                    ),
                ));
            }
        }
    }

    // Unreachable functions may still carry fn markers: find and
    // reject them, plus every marker not sitting on a flagged line.
    for (i, f) in fns.iter().enumerate() {
        if reach[i] != 0 {
            continue;
        }
        if let Some((mline, _)) = &f.fn_marker {
            claimed_fn_markers.insert((f.file, *mline));
            out.push(finding(
                PASS_MARKER,
                &files[f.file].0,
                format!(
                    "line {mline}: rt-ok(fn) marker on `{}`, which is not reachable \
                     from any RT entry — remove the marker",
                    f.name,
                ),
            ));
        }
    }
    for (fi, (path, text)) in files.iter().enumerate() {
        for (idx, raw) in text.lines().enumerate().take(cutoffs[fi]) {
            let n = idx + 1;
            if raw.contains("rt-ok(fn):") {
                if !claimed_fn_markers.contains(&(fi, n)) {
                    out.push(finding(
                        PASS_MARKER,
                        path,
                        format!(
                            "line {n}: rt-ok(fn) marker not attached to any function \
                             header — move it onto (or directly above) the `fn` line",
                        ),
                    ));
                }
            } else if raw.contains("rt-ok:") && !flagged_lines.contains(&(fi, n)) {
                out.push(finding(
                    PASS_MARKER,
                    path,
                    format!(
                        "line {n}: stale rt-ok marker — no RT pass flags this line; \
                         remove the marker",
                    ),
                ));
            }
        }
    }
    out
}

/// Runs every real-time-safety pass over `s` with the real entry table.
pub fn run_rtsafe(s: &Sources) -> Vec<Finding> {
    let mut files: Vec<(String, String)> = s.server_files.clone();
    files.extend(s.dsp_files.iter().cloned());
    run_rtsafe_files(&files, RT_ENTRIES)
}

/// Lints the workspace at `root`, applying the rtsafe allowlist
/// (`crates/xtask/rtsafe-allow.txt` — empty at merge; every future
/// entry must be commented).
pub fn run_workspace_rtsafe(root: &Path) -> io::Result<Vec<Finding>> {
    let sources = Sources::load(root)?;
    let allow = match fs::read_to_string(root.join("crates/xtask/rtsafe-allow.txt")) {
        Ok(text) => parse_allowlist(&text),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    Ok(apply_allowlist(run_rtsafe(&sources), &allow))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A one-entry table: `tick` in `engine.rs`, all classes forbidden.
    const TICK_ALL: &[RtEntry] =
        &[RtEntry { file: "engine.rs", func: "tick", classes: ALLOC | BLOCK | UNBOUNDED }];

    fn engine(text: &str) -> Vec<(String, String)> {
        vec![("crates/core/src/engine.rs".to_string(), text.to_string())]
    }

    #[test]
    fn alloc_sink_caught_in_entry() {
        let src = "pub fn tick(core: &mut Core) {\n    let label = core.name.to_string();\n}\n";
        let findings = run_rtsafe_files(&engine(src), TICK_ALL);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].pass, "rt-alloc");
        assert!(findings[0].message.contains("line 2"));
        assert!(findings[0].message.contains(".to_string()"));
    }

    #[test]
    fn reachability_descends_and_stops() {
        // tick → helper → leaf: the leaf's format! is flagged; the
        // unreachable fn's identical sink is not.
        let src = "pub fn tick(core: &mut Core) {\n    helper(core);\n}\n\
                   fn helper(core: &mut Core) {\n    leaf(core);\n}\n\
                   fn leaf(core: &mut Core) {\n    let s = format!(\"x{}\", core.t);\n}\n\
                   fn unreachable_fn(core: &mut Core) {\n    let s = format!(\"y{}\", core.t);\n}\n";
        let findings = run_rtsafe_files(&engine(src), TICK_ALL);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("line 8"));
        assert!(findings[0].message.contains("`leaf`"));
    }

    #[test]
    fn method_and_qualified_calls_resolve() {
        let src = "pub fn tick(core: &mut Core) {\n    core.step();\n    Pool::refill(core);\n}\n\
                   impl Core {\n    fn step(&mut self) {\n        let v = self.buf.to_vec();\n    }\n}\n\
                   impl Pool {\n    fn refill(core: &mut Core) {\n        core.items.push(1);\n    }\n}\n";
        let findings = run_rtsafe_files(&engine(src), TICK_ALL);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().any(|f| f.message.contains("`step`")));
        assert!(findings.iter().any(|f| f.message.contains("`refill`")));
    }

    #[test]
    fn block_and_unbounded_sinks_caught() {
        let src = "pub fn tick(core: &mut Core) {\n    let g = core.mu.lock();\n    loop {\n        break;\n    }\n}\n";
        let findings = run_rtsafe_files(&engine(src), TICK_ALL);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().any(|f| f.pass == "rt-block" && f.message.contains(".lock()")));
        assert!(findings.iter().any(|f| f.pass == "rt-unbounded" && f.message.contains("loop")));
    }

    #[test]
    fn entry_class_mask_limits_the_passes() {
        // A BLOCK|UNBOUNDED entry (the exec_fast/drain contract):
        // allocation is by design, blocking still fails.
        let entries: &[RtEntry] =
            &[RtEntry { file: "engine.rs", func: "tick", classes: BLOCK | UNBOUNDED }];
        let src = "pub fn tick(core: &mut Core) {\n    let v = core.buf.to_vec();\n    let g = core.mu.lock();\n}\n";
        let findings = run_rtsafe_files(&engine(src), entries);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].pass, "rt-block");
    }

    #[test]
    fn try_send_is_not_a_blocking_sink() {
        let src =
            "pub fn tick(core: &mut Core) {\n    let _ = core.tx.try_send(1);\n    let _ = core.rx.try_recv();\n}\n";
        assert_eq!(run_rtsafe_files(&engine(src), TICK_ALL), Vec::new());
    }

    #[test]
    fn line_marker_suppresses_and_stale_marker_fails() {
        let ok = "pub fn tick(core: &mut Core) {\n    let id = core.name.clone(); // rt-ok: event fan-out, bounded by subscriber count\n}\n";
        assert_eq!(run_rtsafe_files(&engine(ok), TICK_ALL), Vec::new());
        // The same marker on a clean line is stale and fails.
        let stale = "pub fn tick(core: &mut Core) {\n    core.t += 1; // rt-ok: nothing here\n}\n";
        let findings = run_rtsafe_files(&engine(stale), TICK_ALL);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].pass, "rt-marker");
        assert!(findings[0].message.contains("stale"));
        // An empty reason fails even on a genuinely flagged line.
        let empty = "pub fn tick(core: &mut Core) {\n    let id = core.name.clone(); // rt-ok:\n}\n";
        let findings = run_rtsafe_files(&engine(empty), TICK_ALL);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("empty reason"));
    }

    #[test]
    fn fn_marker_covers_the_body_and_goes_stale() {
        let ok = "pub fn tick(core: &mut Core) {\n    rebuild(core);\n}\n\
                  // rt-ok(fn): plan rebuild, runs only on topology changes\n\
                  fn rebuild(core: &mut Core) {\n    let v = core.buf.to_vec();\n    core.plan.push(v);\n}\n";
        assert_eq!(run_rtsafe_files(&engine(ok), TICK_ALL), Vec::new());
        // Same marker on a sink-free fn is stale.
        let stale = "pub fn tick(core: &mut Core) {\n    rebuild(core);\n}\n\
                     // rt-ok(fn): plan rebuild, runs only on topology changes\n\
                     fn rebuild(core: &mut Core) {\n    core.t += 1;\n}\n";
        let findings = run_rtsafe_files(&engine(stale), TICK_ALL);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("stale rt-ok(fn)"));
        // On an unreachable fn it must also fail.
        let unreachable = "pub fn tick(core: &mut Core) {\n    core.t += 1;\n}\n\
                           // rt-ok(fn): who calls this?\n\
                           fn orphan(core: &mut Core) {\n    let v = core.buf.to_vec();\n}\n";
        let findings = run_rtsafe_files(&engine(unreachable), TICK_ALL);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("not reachable"));
        // Floating in space, attached to nothing, it fails too.
        let floating =
            "// rt-ok(fn): attached to nothing\n\nstatic X: u32 = 0;\n\npub fn tick(core: &mut Core) {\n    core.t += 1;\n}\n";
        let findings = run_rtsafe_files(&engine(floating), TICK_ALL);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("not attached"));
    }

    #[test]
    fn rotted_entry_table_fails() {
        let entries: &[RtEntry] =
            &[RtEntry { file: "engine.rs", func: "tick_quantum", classes: ALLOC }];
        let src = "pub fn tick(core: &mut Core) {\n    core.t += 1;\n}\n";
        let findings = run_rtsafe_files(&engine(src), entries);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].pass, "rt-entries");
        assert!(findings[0].message.contains("tick_quantum"));
    }

    #[test]
    fn cfg_test_modules_are_skipped() {
        let src = "pub fn tick(core: &mut Core) {\n    core.t += 1;\n}\n\
                   #[cfg(test)]\nmod tests {\n    fn tick(core: &mut Core) {\n        let v = core.buf.to_vec(); // rt-ok: not scanned\n    }\n}\n";
        assert_eq!(run_rtsafe_files(&engine(src), TICK_ALL), Vec::new());
    }

    /// The real tree must lint clean with an *empty* allowlist — the
    /// acceptance bar for the RT-safety pass.
    #[test]
    fn workspace_is_rtsafe_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root");
        let allow_path = root.join("crates/xtask/rtsafe-allow.txt");
        if allow_path.exists() {
            let allow = fs::read_to_string(&allow_path).expect("read rtsafe-allow.txt");
            assert_eq!(
                parse_allowlist(&allow),
                Vec::new(),
                "rtsafe-allow.txt must stay empty: fix the code, not the lint"
            );
        }
        let findings = run_workspace_rtsafe(root).expect("workspace sources load");
        assert_eq!(findings, Vec::new(), "rtsafe lint must pass on the real tree");
    }
}
