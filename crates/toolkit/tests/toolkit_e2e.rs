//! Toolkit scenarios against a live server: the §5.9 answering machine,
//! telephone dialogues, soundviewer synchronisation, manager policy.

use da_alib::Connection;
use da_proto::command::RecordTermination;
use da_proto::event::{Event, EventMask};
use da_proto::types::SoundType;
use da_server::{AudioServer, ServerConfig};
use da_toolkit::builders::{AnsweringMachine, PhoneLoud, PlayLoud, RecordLoud};
use da_toolkit::manager::{AllowAll, AudioManager, QuotaPolicy, Verdict};
use da_toolkit::soundviewer::Soundviewer;
use da_toolkit::sounds::SoundHandle;
use std::time::Duration;

fn start() -> (AudioServer, Connection) {
    let server = AudioServer::start(ServerConfig::default()).expect("server");
    let conn = Connection::establish(server.connect_pipe(), "toolkit-test").expect("connect");
    (server, conn)
}

#[test]
fn play_loud_builder_plays() {
    let (server, mut conn) = start();
    let control = server.control();
    control.set_speaker_capture(0, 50_000);
    let play = PlayLoud::build(&mut conn, vec![]).unwrap();
    let sound =
        SoundHandle::from_pcm(&mut conn, 8000, &da_dsp::tone::sine(8000, 600.0, 2400, 12000))
            .unwrap();
    play.play_blocking(&mut conn, sound.id, Duration::from_secs(10)).unwrap();
    assert!(control.run_until(Duration::from_secs(5), |c| {
        c.hw.speakers[0].captured().len() >= 2400
    }));
    let cap = control.take_captured(0);
    assert!(da_dsp::analysis::goertzel_power(&cap[..2400], 8000, 600.0) > 10_000.0);
    server.shutdown();
}

#[test]
fn record_loud_builder_records() {
    let (server, mut conn) = start();
    let control = server.control();
    control.speak_into_microphone(0, &da_dsp::tone::sine(8000, 350.0, 9000, 11000));
    let rec = RecordLoud::build(&mut conn, vec![]).unwrap();
    let sound = conn.create_sound(SoundType::TELEPHONE).unwrap();
    let frames = rec
        .record_blocking(
            &mut conn,
            sound,
            RecordTermination::MaxFrames(2400),
            Duration::from_secs(10),
        )
        .unwrap();
    assert!(frames >= 2400);
    let handle = SoundHandle::wrap(&mut conn, sound).unwrap();
    let pcm = handle.download_pcm(&mut conn).unwrap();
    assert!(da_dsp::analysis::goertzel_power(&pcm, 8000, 350.0) > 10_000.0);
    server.shutdown();
}

#[test]
fn answering_machine_full_call() {
    let (server, mut conn) = start();
    let control = server.control();

    // Build the §5.9 structure and its sounds.
    let am = AnsweringMachine::build(&mut conn, vec![]).unwrap();
    let greeting = SoundHandle::from_pcm(
        &mut conn,
        8000,
        &da_dsp::tone::sine(8000, 440.0, 8000, 12000), // 1 s "greeting"
    )
    .unwrap();
    let beep = SoundHandle::from_catalog(&mut conn, "system", "beep").unwrap();
    let message = conn.create_sound(SoundType::TELEPHONE).unwrap();
    am.arm(&mut conn, greeting.id, beep.id, message, RecordTermination::OnHangup).unwrap();

    // Monitor the device-LOUD telephone for rings while unmapped (§5.9
    // footnote).
    let (devices, _) = conn.query_device_loud().unwrap();
    let phone_dev = devices
        .iter()
        .find(|d| d.class == da_proto::types::DeviceClass::Telephone)
        .expect("phone in device loud");
    conn.select_events(phone_dev.id, EventMask::DEVICE).unwrap();
    // Synchronise so the selection is registered before the call arrives.
    conn.sync().unwrap();

    // A caller rings in, will speak a 500 Hz message then hang up.
    let caller = control.add_remote_party("555-7777");
    control.with_party(caller, |p, pstn| {
        // Politely wait out the greeting (1 s) and beep (250 ms) before
        // speaking the 2 s message.
        p.say(&vec![0i16; 12000]);
        p.say(&da_dsp::tone::sine(8000, 500.0, 16000, 12000));
        p.call(pstn, "555-0100");
    });

    // Ring arrives on the device LOUD.
    let ring = conn
        .wait_event(Duration::from_secs(10), |e| {
            matches!(
                e,
                Event::CallProgress { state: da_proto::event::CallState::Ringing, .. }
            )
        })
        .unwrap();
    match ring {
        Event::CallProgress { caller_id, .. } => {
            assert_eq!(caller_id.as_deref(), Some("555-7777"));
        }
        _ => unreachable!(),
    }

    // Engage: map, raise, start the preloaded queue.
    am.engage(&mut conn).unwrap();

    // Wait until the greeting+beep have played and recording starts.
    conn.wait_event(Duration::from_secs(20), |e| matches!(e, Event::RecordStarted { .. }))
        .unwrap();

    // Give the caller time to finish speaking, then hang up.
    control.run_until(Duration::from_secs(30), |c| {
        c.remote_parties[caller].pending_say() == 0
    });
    control.with_party(caller, |p, pstn| p.hang_up(pstn));

    // Recording terminates on hangup.
    let stopped = conn
        .wait_event(Duration::from_secs(20), |e| matches!(e, Event::RecordStopped { .. }))
        .unwrap();
    match stopped {
        Event::RecordStopped { reason, frames, .. } => {
            assert_eq!(reason, da_proto::event::RecordStopReason::Hangup);
            assert!(frames > 8000, "recorded only {frames} frames");
        }
        _ => unreachable!(),
    }

    // The message must contain the caller's 500 Hz tone.
    let handle = SoundHandle::wrap(&mut conn, message).unwrap();
    let pcm = handle.download_pcm(&mut conn).unwrap();
    let p500 = da_dsp::analysis::goertzel_power(&pcm, 8000, 500.0);
    let p440 = da_dsp::analysis::goertzel_power(&pcm, 8000, 440.0);
    assert!(p500 > p440 * 5.0, "message should be caller audio: {p500} vs greeting {p440}");

    // The caller must have heard the greeting (440 Hz) and the beep.
    let heard = control.with_party(caller, |p, _| p.heard().to_vec());
    let heard_greeting = da_dsp::analysis::goertzel_power(&heard, 8000, 440.0);
    assert!(heard_greeting > 10_000.0, "caller did not hear greeting");
    let heard_beep = da_dsp::analysis::goertzel_power(&heard, 8000, 1000.0);
    assert!(heard_beep > 1_000.0, "caller did not hear beep");

    am.disengage(&mut conn).unwrap();
    server.shutdown();
}

#[test]
fn phone_dialogue_speaks_and_hears_dtmf() {
    let (server, mut conn) = start();
    let control = server.control();

    let phone = PhoneLoud::build(&mut conn, vec![]).unwrap();

    // Remote party will auto-answer and send DTMF after hearing speech.
    let remote = control.add_remote_party("555-8888");
    control.with_party(remote, |p, _| {
        p.auto_answer_after = Some(4000); // answer after 0.5 s of ringing
        p.send_dtmf("42#");
    });

    let connected = phone.dial_blocking(&mut conn, "555-8888", Duration::from_secs(20)).unwrap();
    assert!(connected);

    phone.speak_blocking(&mut conn, "enter code", Duration::from_secs(30)).unwrap();

    // Collect the remote party's digits.
    let mut digits = Vec::new();
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    while digits.len() < 3 && std::time::Instant::now() < deadline {
        if let Some(Event::DtmfReceived { digit, .. }) =
            conn.next_event(Duration::from_millis(100)).unwrap()
        {
            digits.push(digit);
        }
    }
    assert_eq!(digits, b"42#".to_vec());

    phone.hang_up(&mut conn).unwrap();
    server.shutdown();
}

#[test]
fn dial_busy_reports_failure() {
    let (server, mut conn) = start();
    let phone = PhoneLoud::build(&mut conn, vec![]).unwrap();
    // No such number: the network returns busy.
    let connected = phone.dial_blocking(&mut conn, "000-0000", Duration::from_secs(20)).unwrap();
    assert!(!connected);
    phone.hang_up(&mut conn).unwrap();
    server.shutdown();
}

#[test]
fn soundviewer_follows_playback() {
    let (server, mut conn) = start();
    let play = PlayLoud::build(&mut conn, vec![]).unwrap();
    // 1 s of audio, sync marks every 100 ms → ~10 marks.
    let sound =
        SoundHandle::from_pcm(&mut conn, 8000, &da_dsp::tone::sine(8000, 440.0, 8000, 10000))
            .unwrap();
    let mut viewer = Soundviewer::new(play.player, sound.frames, 8000);
    play.play(&mut conn, sound.id).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    let mut done = false;
    while std::time::Instant::now() < deadline && !done {
        if let Some(ev) = conn.next_event(Duration::from_millis(100)).unwrap() {
            viewer.handle_event(&ev);
            done = matches!(ev, Event::CommandDone { .. });
        }
    }
    assert!(done, "playback never completed");
    assert!(viewer.marks_seen >= 8, "only {} sync marks", viewer.marks_seen);
    assert!(viewer.fraction() > 0.9, "viewer at {:.2}", viewer.fraction());
    let bar = viewer.render_ascii(20);
    assert!(bar.contains('█'), "{bar}");
    server.shutdown();
}

#[test]
fn audio_manager_policy_gates_maps() {
    let server = AudioServer::start(ServerConfig::default()).expect("server");
    let mut mgr_conn =
        Connection::establish(server.connect_pipe(), "audio-manager").expect("connect");
    let mut app_conn = Connection::establish(server.connect_pipe(), "app").expect("connect");

    let mut manager = AudioManager::attach(&mut mgr_conn, QuotaPolicy::new(1)).unwrap();

    // The app tries to map two LOUDs; the quota allows one.
    let l1 = app_conn.create_loud(None).unwrap();
    let l2 = app_conn.create_loud(None).unwrap();
    app_conn.select_events(l1, EventMask::LOUD_STATE).unwrap();
    app_conn.select_events(l2, EventMask::LOUD_STATE).unwrap();
    app_conn.map_loud(l1).unwrap();
    app_conn.map_loud(l2).unwrap();
    app_conn.sync().unwrap();

    manager.process(&mut mgr_conn, Duration::from_secs(2)).unwrap();
    let stats = manager.stats();
    assert_eq!(stats.maps_allowed, 1);
    assert_eq!(stats.maps_denied, 1);

    // Exactly one MapNotify arrived.
    let first = app_conn.next_event(Duration::from_secs(2)).unwrap();
    assert!(matches!(first, Some(Event::MapNotify { loud }) if loud == l1), "{first:?}");

    // A second manager cannot attach.
    let mut other = Connection::establish(server.connect_pipe(), "impostor").expect("connect");
    assert!(AudioManager::attach(&mut other, AllowAll).is_err());

    manager.detach(&mut mgr_conn).unwrap();
    server.shutdown();
}

#[test]
fn quota_policy_unit() {
    let mut p = QuotaPolicy::new(2);
    use da_proto::ids::{ClientId, LoudId};
    use da_toolkit::manager::MapPolicy;
    assert_eq!(p.on_map(LoudId(1), ClientId(1)), Verdict::Allow);
    assert_eq!(p.on_map(LoudId(2), ClientId(1)), Verdict::Allow);
    assert_eq!(p.on_map(LoudId(3), ClientId(1)), Verdict::Deny);
    assert_eq!(p.on_map(LoudId(4), ClientId(2)), Verdict::Allow);
    assert_eq!(p.on_raise(LoudId(3), ClientId(1)), Verdict::Allow);
}

#[test]
fn sound_handle_wav_roundtrip() {
    let (server, mut conn) = start();
    let pcm = da_dsp::tone::sine(8000, 440.0, 1600, 9000);
    let wav = da_dsp::wav::encode_pcm16(8000, 1, &pcm);
    let handle = SoundHandle::from_wav(&mut conn, &wav).unwrap();
    assert_eq!(handle.frames, 1600);
    assert_eq!(handle.duration(), Duration::from_millis(200));
    let back = handle.download_wav(&mut conn).unwrap();
    let decoded = da_dsp::wav::decode(&back).unwrap();
    assert_eq!(decoded.samples, pcm);
    server.shutdown();
}
