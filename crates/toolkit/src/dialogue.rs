//! Touch-tone dialogues.
//!
//! Telephone-based access — voice mail menus, "dial by name" (paper
//! §1.2) — is built from spoken prompts and DTMF input. The toolkit's
//! dialogue helpers provide the mechanism; the application provides the
//! menu structure (policy).

use crate::builders::PhoneLoud;
use da_alib::{AlibError, Connection};
use da_proto::event::Event;
use da_proto::ids::ResourceId;
use std::time::Duration;

/// One option of a touch-tone menu.
#[derive(Debug, Clone)]
pub struct MenuOption {
    /// The DTMF key selecting this option.
    pub key: u8,
    /// Spoken description ("press one for new messages").
    pub description: String,
}

/// A touch-tone menu runnable over a connected call.
#[derive(Debug, Clone)]
pub struct TouchToneMenu {
    /// Spoken introduction.
    pub intro: String,
    /// Selectable options.
    pub options: Vec<MenuOption>,
    /// How long to wait for a key after the prompt.
    pub input_timeout: Duration,
    /// Attempts before giving up.
    pub max_attempts: u32,
}

impl TouchToneMenu {
    /// Creates a menu with defaults (10 s input timeout, 3 attempts).
    pub fn new(intro: &str) -> Self {
        TouchToneMenu {
            intro: intro.to_string(),
            options: Vec::new(),
            input_timeout: Duration::from_secs(10),
            max_attempts: 3,
        }
    }

    /// Adds an option.
    pub fn option(mut self, key: u8, description: &str) -> Self {
        self.options.push(MenuOption { key, description: description.to_string() });
        self
    }

    /// The full prompt text (intro plus option descriptions).
    pub fn prompt_text(&self) -> String {
        let mut text = self.intro.clone();
        for opt in &self.options {
            text.push_str(". ");
            text.push_str(&opt.description);
        }
        text
    }

    /// Whether a key is one of the menu's options.
    pub fn valid(&self, key: u8) -> bool {
        self.options.iter().any(|o| o.key == key)
    }

    /// Runs the menu over a connected call: speak the prompt, wait for a
    /// valid key, repeat up to `max_attempts`. Returns the selected key,
    /// or `None` if the caller never chose.
    pub fn run(
        &self,
        conn: &mut Connection,
        phone: &PhoneLoud,
    ) -> Result<Option<u8>, AlibError> {
        for _ in 0..self.max_attempts {
            phone.speak_blocking(conn, &self.prompt_text(), Duration::from_secs(60))?;
            // Collect DTMF until timeout or valid key.
            let deadline = std::time::Instant::now() + self.input_timeout;
            loop {
                let left = deadline.saturating_duration_since(std::time::Instant::now());
                if left.is_zero() {
                    break;
                }
                let tel = phone.telephone;
                let ev = conn.next_event(left.min(Duration::from_millis(50)))?;
                if let Some(Event::DtmfReceived { device, digit }) = ev {
                    if device == ResourceId::VDevice(tel) && self.valid(digit) {
                        return Ok(Some(digit));
                    }
                }
            }
        }
        Ok(None)
    }
}

/// Collects a fixed number of DTMF digits from a connected call (e.g. an
/// extension or mailbox number).
pub fn collect_digits(
    conn: &mut Connection,
    phone: &PhoneLoud,
    count: usize,
    timeout: Duration,
) -> Result<Option<String>, AlibError> {
    let mut digits = String::new();
    let deadline = std::time::Instant::now() + timeout;
    while digits.len() < count {
        let left = deadline.saturating_duration_since(std::time::Instant::now());
        if left.is_zero() {
            return Ok(None);
        }
        let tel = phone.telephone;
        let ev = conn.next_event(left.min(Duration::from_millis(50)))?;
        if let Some(Event::DtmfReceived { device, digit }) = ev {
            if device == ResourceId::VDevice(tel) {
                digits.push(digit as char);
            }
        }
    }
    Ok(Some(digits))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prompt_concatenates_options() {
        let m = TouchToneMenu::new("main menu")
            .option(b'1', "press one for messages")
            .option(b'2', "press two to record");
        let p = m.prompt_text();
        assert!(p.starts_with("main menu"));
        assert!(p.contains("press one"));
        assert!(p.contains("press two"));
    }

    #[test]
    fn validity() {
        let m = TouchToneMenu::new("x").option(b'1', "one").option(b'#', "pound");
        assert!(m.valid(b'1'));
        assert!(m.valid(b'#'));
        assert!(!m.valid(b'9'));
    }
}
