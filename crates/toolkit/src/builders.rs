//! LOUD-shape builders: auto-wiring for the common device structures.

use da_alib::{AlibError, Connection};
use da_proto::command::{DeviceCommand, RecordTermination};
use da_proto::event::{CallState, Event, EventMask};
use da_proto::ids::{LoudId, SoundId, VDeviceId};
use da_proto::types::{Attribute, DeviceClass, WireType};
use std::time::Duration;

/// A playback structure: player wired to an output.
#[derive(Debug, Clone, Copy)]
pub struct PlayLoud {
    /// The root LOUD.
    pub loud: LoudId,
    /// The player device.
    pub player: VDeviceId,
    /// The output device.
    pub output: VDeviceId,
}

impl PlayLoud {
    /// Builds, wires and maps a playback LOUD; selects queue and device
    /// events so callers can block on completion.
    pub fn build(conn: &mut Connection, output_attrs: Vec<Attribute>) -> Result<Self, AlibError> {
        let loud = conn.create_loud(None)?;
        let player = conn.create_vdevice(loud, DeviceClass::Player, vec![])?;
        let output = conn.create_vdevice(loud, DeviceClass::Output, output_attrs)?;
        conn.create_wire(player, 0, output, 0, WireType::Any)?;
        conn.select_events(loud, EventMask::QUEUE | EventMask::LOUD_STATE)?;
        conn.select_events(player, EventMask::DEVICE | EventMask::SYNC)?;
        conn.map_loud(loud)?;
        Ok(PlayLoud { loud, player, output })
    }

    /// Enqueues a play and starts the queue.
    pub fn play(&self, conn: &mut Connection, sound: SoundId) -> Result<(), AlibError> {
        conn.enqueue_cmd(self.loud, self.player, DeviceCommand::Play(sound))?;
        conn.start_queue(self.loud)
    }

    /// Plays a sound and blocks until its `CommandDone` arrives.
    pub fn play_blocking(
        &self,
        conn: &mut Connection,
        sound: SoundId,
        timeout: Duration,
    ) -> Result<(), AlibError> {
        self.play(conn, sound)?;
        let loud = self.loud;
        conn.wait_event(timeout, |e| {
            matches!(e, Event::CommandDone { loud: l, .. } if *l == loud)
        })?;
        Ok(())
    }

    /// Stops playback immediately.
    pub fn stop(&self, conn: &mut Connection) -> Result<(), AlibError> {
        conn.stop_queue(self.loud)
    }

    /// Tears the structure down.
    pub fn destroy(self, conn: &mut Connection) -> Result<(), AlibError> {
        conn.destroy_loud(self.loud)
    }
}

/// A recording structure: input wired to a recorder.
#[derive(Debug, Clone, Copy)]
pub struct RecordLoud {
    /// The root LOUD.
    pub loud: LoudId,
    /// The input (microphone) device.
    pub input: VDeviceId,
    /// The recorder device.
    pub recorder: VDeviceId,
}

impl RecordLoud {
    /// Builds, wires and maps a recording LOUD.
    pub fn build(conn: &mut Connection, input_attrs: Vec<Attribute>) -> Result<Self, AlibError> {
        let loud = conn.create_loud(None)?;
        let input = conn.create_vdevice(loud, DeviceClass::Input, input_attrs)?;
        let recorder = conn.create_vdevice(loud, DeviceClass::Recorder, vec![])?;
        conn.create_wire(input, 0, recorder, 0, WireType::Any)?;
        conn.select_events(loud, EventMask::QUEUE | EventMask::LOUD_STATE)?;
        conn.select_events(recorder, EventMask::DEVICE | EventMask::SYNC)?;
        conn.map_loud(loud)?;
        Ok(RecordLoud { loud, input, recorder })
    }

    /// Starts recording into `sound` until `termination`.
    pub fn record(
        &self,
        conn: &mut Connection,
        sound: SoundId,
        termination: RecordTermination,
    ) -> Result<(), AlibError> {
        conn.enqueue_cmd(self.loud, self.recorder, DeviceCommand::Record(sound, termination))?;
        conn.start_queue(self.loud)
    }

    /// Records until termination and blocks for the stop event; returns
    /// the recorded frame count.
    pub fn record_blocking(
        &self,
        conn: &mut Connection,
        sound: SoundId,
        termination: RecordTermination,
        timeout: Duration,
    ) -> Result<u64, AlibError> {
        self.record(conn, sound, termination)?;
        let rec = self.recorder;
        let ev = conn.wait_event(timeout, |e| {
            matches!(e, Event::RecordStopped { vdev, .. } if *vdev == rec)
        })?;
        match ev {
            Event::RecordStopped { frames, .. } => Ok(frames),
            _ => unreachable!(),
        }
    }

    /// Tears the structure down.
    pub fn destroy(self, conn: &mut Connection) -> Result<(), AlibError> {
        conn.destroy_loud(self.loud)
    }
}

/// A telephone dialogue structure: synthesizer and player feeding the
/// line, the line feeding a recorder; a recognizer can be attached for
/// voice dialogues.
#[derive(Debug, Clone, Copy)]
pub struct PhoneLoud {
    /// The root LOUD.
    pub loud: LoudId,
    /// The telephone device.
    pub telephone: VDeviceId,
    /// A player whose output reaches the caller.
    pub player: VDeviceId,
    /// A speech synthesizer whose output reaches the caller.
    pub synth: VDeviceId,
    /// A mixer combining player and synthesizer onto the line.
    pub mixer: VDeviceId,
    /// A recorder capturing the caller's audio.
    pub recorder: VDeviceId,
}

impl PhoneLoud {
    /// Builds the full telephone dialogue structure, mapped and with
    /// events selected.
    pub fn build(conn: &mut Connection, phone_attrs: Vec<Attribute>) -> Result<Self, AlibError> {
        let loud = conn.create_loud(None)?;
        let telephone = conn.create_vdevice(loud, DeviceClass::Telephone, phone_attrs)?;
        let player = conn.create_vdevice(loud, DeviceClass::Player, vec![])?;
        let synth = conn.create_vdevice(loud, DeviceClass::SpeechSynthesizer, vec![])?;
        let mixer = conn.create_vdevice(loud, DeviceClass::Mixer, vec![])?;
        let recorder = conn.create_vdevice(loud, DeviceClass::Recorder, vec![])?;
        conn.create_wire(player, 0, mixer, 0, WireType::Any)?;
        conn.create_wire(synth, 0, mixer, 1, WireType::Any)?;
        conn.create_wire(mixer, 0, telephone, 0, WireType::Any)?;
        conn.create_wire(telephone, 0, recorder, 0, WireType::Any)?;
        conn.select_events(loud, EventMask::QUEUE | EventMask::LOUD_STATE)?;
        conn.select_events(telephone, EventMask::DEVICE)?;
        conn.select_events(recorder, EventMask::DEVICE)?;
        conn.map_loud(loud)?;
        Ok(PhoneLoud { loud, telephone, player, synth, mixer, recorder })
    }

    /// Places a call and blocks until connected. Returns `false` when the
    /// far end was busy or did not answer.
    pub fn dial_blocking(
        &self,
        conn: &mut Connection,
        number: &str,
        timeout: Duration,
    ) -> Result<bool, AlibError> {
        conn.enqueue_cmd(self.loud, self.telephone, DeviceCommand::Dial(number.to_string()))?;
        conn.start_queue(self.loud)?;
        let tel = self.telephone;
        let loud = self.loud;
        let ev = conn.wait_event(timeout, |e| match e {
            Event::CallProgress { device, state, .. } => {
                *device == da_proto::ids::ResourceId::VDevice(tel)
                    && matches!(
                        state,
                        CallState::Connected | CallState::Busy | CallState::NoAnswer
                    )
            }
            Event::QueueStopped { loud: l, .. } => *l == loud,
            _ => false,
        })?;
        Ok(matches!(ev, Event::CallProgress { state: CallState::Connected, .. }))
    }

    /// Waits for the line to ring, then answers.
    pub fn answer_blocking(
        &self,
        conn: &mut Connection,
        timeout: Duration,
    ) -> Result<Option<String>, AlibError> {
        let tel = self.telephone;
        let ring = conn.wait_event(timeout, |e| {
            matches!(
                e,
                Event::CallProgress { device, state: CallState::Ringing, .. }
                    if *device == da_proto::ids::ResourceId::VDevice(tel)
            )
        })?;
        let caller = match ring {
            Event::CallProgress { caller_id, .. } => caller_id,
            _ => None,
        };
        conn.enqueue_cmd(self.loud, self.telephone, DeviceCommand::Answer)?;
        conn.start_queue(self.loud)?;
        conn.wait_event(timeout, |e| {
            matches!(
                e,
                Event::CallProgress { device, state: CallState::Connected, .. }
                    if *device == da_proto::ids::ResourceId::VDevice(tel)
            )
        })?;
        Ok(caller)
    }

    /// Speaks text to the connected caller, blocking until done.
    pub fn speak_blocking(
        &self,
        conn: &mut Connection,
        text: &str,
        timeout: Duration,
    ) -> Result<(), AlibError> {
        conn.enqueue_cmd(self.loud, self.synth, DeviceCommand::SpeakText(text.to_string()))?;
        conn.start_queue(self.loud)?;
        let loud = self.loud;
        let synth = self.synth;
        conn.wait_event(timeout, |e| {
            matches!(e, Event::CommandDone { loud: l, vdev, .. } if *l == loud && *vdev == synth)
        })?;
        Ok(())
    }

    /// Hangs up.
    pub fn hang_up(&self, conn: &mut Connection) -> Result<(), AlibError> {
        conn.immediate(self.telephone, DeviceCommand::Stop)
    }

    /// Tears the structure down.
    pub fn destroy(self, conn: &mut Connection) -> Result<(), AlibError> {
        conn.destroy_loud(self.loud)
    }
}

/// The answering machine of paper §5.9: telephone, player and recorder,
/// with the player feeding the line and the line feeding the recorder
/// (Figures 5-2 through 5-4).
#[derive(Debug, Clone, Copy)]
pub struct AnsweringMachine {
    /// The root LOUD.
    pub loud: LoudId,
    /// The telephone device.
    pub telephone: VDeviceId,
    /// The greeting/beep player.
    pub player: VDeviceId,
    /// The message recorder.
    pub recorder: VDeviceId,
}

impl AnsweringMachine {
    /// Builds the LOUD tree and wiring of Figure 5-3 (unmapped: "Since
    /// most of the time the phone is not ringing, the LOUD can stay
    /// unmapped").
    pub fn build(conn: &mut Connection, phone_attrs: Vec<Attribute>) -> Result<Self, AlibError> {
        let loud = conn.create_loud(None)?;
        let telephone = conn.create_vdevice(loud, DeviceClass::Telephone, phone_attrs)?;
        let player = conn.create_vdevice(loud, DeviceClass::Player, vec![])?;
        let recorder = conn.create_vdevice(loud, DeviceClass::Recorder, vec![])?;
        // Player output -> telephone input (the greeting reaches the
        // caller); telephone output -> recorder input (the message is
        // stored).
        conn.create_wire(player, 0, telephone, 0, WireType::Any)?;
        conn.create_wire(telephone, 0, recorder, 0, WireType::Any)?;
        conn.select_events(loud, EventMask::QUEUE | EventMask::LOUD_STATE)?;
        conn.select_events(telephone, EventMask::DEVICE)?;
        conn.select_events(recorder, EventMask::DEVICE)?;
        Ok(AnsweringMachine { loud, telephone, player, recorder })
    }

    /// Preloads the answering script (Figure 5-4): answer, play the
    /// greeting, play the beep, record the message.
    pub fn arm(
        &self,
        conn: &mut Connection,
        greeting: SoundId,
        beep: SoundId,
        message: SoundId,
        termination: RecordTermination,
    ) -> Result<(), AlibError> {
        conn.enqueue(
            self.loud,
            vec![
                da_proto::QueueEntry::Device { vdev: self.telephone, cmd: DeviceCommand::Answer },
                da_proto::QueueEntry::Device { vdev: self.player, cmd: DeviceCommand::Play(greeting) },
                da_proto::QueueEntry::Device { vdev: self.player, cmd: DeviceCommand::Play(beep) },
                da_proto::QueueEntry::Device {
                    vdev: self.recorder,
                    cmd: DeviceCommand::Record(message, termination),
                },
            ],
        )
    }

    /// On an incoming ring: raise, map and start the preloaded queue
    /// (paper §5.9: "the application would raise the LOUD to the top of
    /// the active stack, map it and start the queue").
    pub fn engage(&self, conn: &mut Connection) -> Result<(), AlibError> {
        conn.map_loud(self.loud)?;
        conn.raise_loud(self.loud)?;
        conn.start_queue(self.loud)
    }

    /// After the call: stop the queue and unmap, ready for the next call.
    pub fn disengage(&self, conn: &mut Connection) -> Result<(), AlibError> {
        conn.stop_queue(self.loud)?;
        conn.immediate(self.telephone, DeviceCommand::Stop)?;
        conn.unmap_loud(self.loud)
    }
}
