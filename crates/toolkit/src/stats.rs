//! Server statistics presentation: the model behind `audiostat`.
//!
//! Fetches one [`ServerStatsData`]/[`ClientStatsData`] snapshot over a
//! connection and renders it as a top-style text table. Like the rest of
//! the toolkit this is mechanism, not policy: the rendering is a plain
//! `String`, usable from a terminal tool, a test, or a log line.

use da_alib::{AlibError, Connection};
use da_proto::reply::{ClientStatsData, HistogramSample, ServerStatsData};
use da_proto::request::Request;
use std::fmt::Write as _;

/// One captured snapshot of server and client statistics.
#[derive(Debug, Clone)]
pub struct StatsSnapshot {
    /// The server's metric registry snapshot.
    pub server: ServerStatsData,
    /// Per-client connection accounting.
    pub clients: Vec<ClientStatsData>,
}

impl StatsSnapshot {
    /// Fetches a snapshot over `conn` (two round trips).
    pub fn fetch(conn: &mut Connection) -> Result<StatsSnapshot, AlibError> {
        let server = conn.query_server_stats()?;
        let clients = conn.list_clients()?;
        Ok(StatsSnapshot { server, clients })
    }

    /// Per-opcode dispatch counts as `(name, count)` pairs, non-zero
    /// rows only, sorted by descending count.
    pub fn opcode_counts(&self) -> Vec<(&'static str, u64)> {
        let mut rows: Vec<(&'static str, u64)> = self
            .server
            .per_opcode
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(op, &n)| (Request::opcode_name(op as u8).unwrap_or("?"), n))
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        rows
    }

    /// The engine tick-duration histogram, when the server recorded one.
    pub fn tick_histogram(&self) -> Option<&HistogramSample> {
        self.server.histogram("engine_tick_us")
    }

    /// Median tick duration in microseconds (upper bucket bound).
    pub fn tick_p50_us(&self) -> u64 {
        self.tick_histogram().map(|h| h.percentile(0.50)).unwrap_or(0)
    }

    /// 99th-percentile tick duration in microseconds.
    pub fn tick_p99_us(&self) -> u64 {
        self.tick_histogram().map(|h| h.percentile(0.99)).unwrap_or(0)
    }

    /// Plan-cache hit rate in [0, 1]: lookups that did not rebuild.
    /// `None` before the first tick.
    pub fn plan_cache_hit_rate(&self) -> Option<f64> {
        let lookups = self.server.counter("plan_cache_lookups_total")?;
        if lookups == 0 {
            return None;
        }
        let rebuilds = self.server.counter("plan_cache_rebuilds_total").unwrap_or(0);
        Some(1.0 - rebuilds as f64 / lookups as f64)
    }

    /// Total request dispatches, split `(fast, slow)` between the
    /// sharded fast path and the global-lock slow path.
    pub fn dispatch_split(&self) -> (u64, u64) {
        (
            self.server.counter("dispatch_fast_total").unwrap_or(0),
            self.server.counter("dispatch_slow_total").unwrap_or(0),
        )
    }

    /// 95th-percentile shard-lock wait in microseconds (0 before any
    /// fast-path dispatch has been timed).
    pub fn lock_wait_p95_us(&self) -> u64 {
        self.server
            .histogram("shard_lock_wait_us")
            .map(|h| h.percentile(0.95))
            .unwrap_or(0)
    }

    /// Transcode-cache hit rate in [0, 1]. `None` before any decode has
    /// consulted the cache.
    pub fn transcode_hit_rate(&self) -> Option<f64> {
        let hits = self.server.counter("transcode_cache_hits_total").unwrap_or(0);
        let misses = self.server.counter("transcode_cache_misses_total").unwrap_or(0);
        let total = hits + misses;
        if total == 0 {
            return None;
        }
        Some(hits as f64 / total as f64)
    }

    /// Renders the snapshot as a top-style table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let s = &self.server;
        let _ = writeln!(
            out,
            "audiostat — tick {} · device time {} frames",
            s.captured_at_tick, s.device_time
        );
        let _ = writeln!(
            out,
            "engine: {} ticks · tick p50 {} us · p99 {} us · {} overruns",
            s.counter("engine_ticks_total").unwrap_or(0),
            self.tick_p50_us(),
            self.tick_p99_us(),
            s.counter("engine_tick_overruns_total").unwrap_or(0),
        );
        match self.plan_cache_hit_rate() {
            Some(rate) => {
                let _ = writeln!(
                    out,
                    "plans:  {:.1}% cache hit ({} lookups, {} rebuilds) · {} active roots",
                    rate * 100.0,
                    s.counter("plan_cache_lookups_total").unwrap_or(0),
                    s.counter("plan_cache_rebuilds_total").unwrap_or(0),
                    s.gauge("active_roots").unwrap_or(0),
                );
            }
            None => {
                let _ = writeln!(out, "plans:  no lookups yet");
            }
        }
        let _ = writeln!(
            out,
            "wire:   {} frames / {} B in · {} frames / {} B out",
            s.counter("wire_frames_in_total").unwrap_or(0),
            s.counter("wire_bytes_in_total").unwrap_or(0),
            s.counter("wire_frames_out_total").unwrap_or(0),
            s.counter("wire_bytes_out_total").unwrap_or(0),
        );
        let (fast, slow) = self.dispatch_split();
        let _ = writeln!(
            out,
            "plane:  {} workers · {} conns (max {}/worker) · busy {}‰",
            s.gauge("conn_plane_workers").unwrap_or(0),
            s.gauge("conn_plane_connections").unwrap_or(0),
            s.gauge("conn_worker_max_connections").unwrap_or(0),
            s.gauge("conn_plane_busy_permille").unwrap_or(0),
        );
        let _ = writeln!(
            out,
            "shard:  {} fast / {} slow dispatches · lock wait p95 {} us · {} events dropped · {} evictions",
            fast,
            slow,
            self.lock_wait_p95_us(),
            s.counter("events_dropped_total").unwrap_or(0),
            s.counter("clients_evicted_total").unwrap_or(0),
        );
        let hit_pct = match self.transcode_hit_rate() {
            Some(rate) => format!("{:.1}% transcode hit", rate * 100.0),
            None => "no transcodes yet".to_string(),
        };
        let _ = writeln!(
            out,
            "store:  {} payloads / {} B shared · {} dedupes · {hit_pct} · {} us saved",
            s.gauge("store_payloads").unwrap_or(0),
            s.gauge("store_bytes_shared").unwrap_or(0),
            s.counter("store_dedupe_hits_total").unwrap_or(0),
            s.counter("transcode_us_saved_total").unwrap_or(0),
        );

        let _ = writeln!(out);
        let _ = writeln!(out, "{:<28} {:>12}", "OPCODE", "DISPATCHED");
        for (name, count) in self.opcode_counts() {
            let _ = writeln!(out, "{name:<28} {count:>12}");
        }

        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:<6} {:<16} {:>8} {:>8} {:>10} {:>10} {:>6}",
            "CLIENT", "NAME", "REQS", "REPLIES", "BYTES IN", "BYTES OUT", "RES"
        );
        for c in &self.clients {
            let resources = c.louds + c.vdevs + c.wires + c.sounds;
            let _ = writeln!(
                out,
                "{:<6} {:<16} {:>8} {:>8} {:>10} {:>10} {:>6}",
                c.client.0, c.name, c.requests, c.replies, c.bytes_in, c.bytes_out, resources
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use da_proto::ids::ClientId;
    use da_proto::reply::{CounterSample, GaugeSample};

    fn sample() -> StatsSnapshot {
        let mut per_opcode = vec![0u64; Request::COUNT];
        per_opcode[0] = 3; // CreateLoud
        per_opcode[48] = 1; // QueryServerStats
        StatsSnapshot {
            server: ServerStatsData {
                captured_at_tick: 7,
                device_time: 560,
                per_opcode,
                counters: vec![
                    CounterSample { name: "engine_ticks_total".into(), value: 7 },
                    CounterSample { name: "plan_cache_lookups_total".into(), value: 7 },
                    CounterSample { name: "plan_cache_rebuilds_total".into(), value: 1 },
                    CounterSample { name: "dispatch_fast_total".into(), value: 5 },
                    CounterSample { name: "dispatch_slow_total".into(), value: 2 },
                    CounterSample { name: "events_dropped_total".into(), value: 1 },
                    CounterSample { name: "clients_evicted_total".into(), value: 1 },
                    CounterSample { name: "store_dedupe_hits_total".into(), value: 2 },
                    CounterSample { name: "transcode_cache_hits_total".into(), value: 3 },
                    CounterSample { name: "transcode_cache_misses_total".into(), value: 1 },
                    CounterSample { name: "transcode_us_saved_total".into(), value: 12 },
                ],
                gauges: vec![
                    GaugeSample { name: "active_roots".into(), value: 1 },
                    GaugeSample { name: "store_payloads".into(), value: 4 },
                    GaugeSample { name: "store_bytes_shared".into(), value: 4096 },
                    GaugeSample { name: "conn_plane_workers".into(), value: 2 },
                    GaugeSample { name: "conn_plane_connections".into(), value: 3 },
                    GaugeSample { name: "conn_worker_max_connections".into(), value: 2 },
                    GaugeSample { name: "conn_plane_busy_permille".into(), value: 41 },
                ],
                histograms: vec![HistogramSample {
                    name: "engine_tick_us".into(),
                    count: 4,
                    sum: 40,
                    buckets: vec![0, 0, 0, 0, 4],
                }],
            },
            clients: vec![ClientStatsData {
                client: ClientId(1),
                name: "probe".into(),
                requests: 4,
                replies: 2,
                events: 0,
                errors: 0,
                bytes_in: 40,
                bytes_out: 20,
                louds: 1,
                vdevs: 2,
                wires: 1,
                sounds: 1,
            }],
        }
    }

    #[test]
    fn derived_figures() {
        let snap = sample();
        assert_eq!(snap.opcode_counts()[0], ("CreateLoud", 3));
        assert_eq!(snap.tick_p50_us(), 15); // all samples in bucket 4: [8, 15]
        assert_eq!(snap.tick_p99_us(), 15);
        let rate = snap.plan_cache_hit_rate().expect("lookups recorded");
        assert!((rate - 6.0 / 7.0).abs() < 1e-9);
        assert_eq!(snap.dispatch_split(), (5, 2));
        let tr = snap.transcode_hit_rate().expect("transcodes recorded");
        assert!((tr - 0.75).abs() < 1e-9);
    }

    #[test]
    fn render_contains_key_rows() {
        let text = sample().render();
        assert!(text.contains("tick 7"));
        assert!(text.contains("CreateLoud"));
        assert!(text.contains("QueryServerStats"));
        assert!(text.contains("probe"));
        assert!(text.contains("cache hit"));
        assert!(text.contains("2 workers"));
        assert!(text.contains("5 fast / 2 slow"));
        assert!(text.contains("1 events dropped"));
        assert!(text.contains("1 evictions"));
        assert!(text.contains("4 payloads / 4096 B shared"));
        assert!(text.contains("75.0% transcode hit"));
        assert!(text.contains("12 us saved"));
    }
}
