//! Flight-recorder trace presentation: the model behind `audiostat
//! --watch`'s waterfall panel.
//!
//! Fetches the server's retained traces (DESIGN.md §15) over a
//! connection, attributes end-to-end latency to pipeline stages with
//! client-side percentiles, and renders the worst recent request as a
//! text waterfall. Like [`crate::stats`] this is mechanism, not policy:
//! the rendering is a plain `String`.

use da_alib::{stage_duration_us, stage_percentile_us, AlibError, Connection};
use da_proto::reply::{TraceData, TraceStage};
use da_proto::request::Request;
use std::fmt::Write as _;

/// Width of the widest waterfall bar, in characters.
const BAR_WIDTH: u64 = 32;

/// One captured batch of flight-recorder traces, slowest first.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// The traces the server returned (its ring is bounded; see
    /// DESIGN.md §15 for the sampling policy).
    pub traces: Vec<TraceData>,
}

impl TraceReport {
    /// Fetches up to `max` traces over `conn` (one round trip).
    pub fn fetch(conn: &mut Connection, max: u32) -> Result<TraceReport, AlibError> {
        Ok(TraceReport { traces: conn.query_traces(max)? })
    }

    /// The slowest retained trace, if any were recorded.
    pub fn worst(&self) -> Option<&TraceData> {
        self.traces.iter().max_by_key(|t| t.total_us())
    }

    /// Per-stage latency attribution: `(stage name, p50, p95)` in
    /// microseconds for every stage at least one trace stamped.
    pub fn stage_attribution(&self) -> Vec<(&'static str, u64, u64)> {
        let mut rows = Vec::new();
        for (i, name) in TraceStage::NAMES.iter().enumerate() {
            let Some(stage) = TraceStage::from_u8(i as u8) else {
                continue; // cast-ok: stage discriminant, < COUNT
            };
            let Some(p50) = stage_percentile_us(&self.traces, stage, 0.50) else {
                continue;
            };
            let p95 = stage_percentile_us(&self.traces, stage, 0.95).unwrap_or(p50);
            rows.push((*name, p50, p95));
        }
        rows
    }

    /// Renders the report: an attribution table plus a waterfall of the
    /// worst retained trace. Empty reports render a one-line notice.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.traces.is_empty() {
            let _ = writeln!(out, "traces: none recorded yet");
            return out;
        }
        let _ = writeln!(out, "traces: {} retained (slowest first)", self.traces.len());
        let _ = writeln!(out, "{:<10} {:>10} {:>10}", "STAGE", "P50 US", "P95 US");
        for (name, p50, p95) in self.stage_attribution() {
            let _ = writeln!(out, "{name:<10} {p50:>10} {p95:>10}");
        }
        if let Some(worst) = self.worst() {
            let _ = writeln!(out);
            out.push_str(&render_waterfall(worst));
        }
        out
    }
}

/// Renders one trace as a text waterfall: each stamped stage on its own
/// row with its offset from the first stamp, its duration (the gap from
/// the preceding stamp), and a bar positioned and scaled against the
/// trace's end-to-end total.
pub fn render_waterfall(trace: &TraceData) -> String {
    let mut out = String::new();
    let opcode = Request::opcode_name(trace.opcode).unwrap_or("?");
    let path = if trace.fast_path { "fast" } else { "slow" };
    let _ = writeln!(
        out,
        "worst: {} client {} seq {} · {} path · {} us total · tick {}",
        opcode,
        trace.client.0,
        trace.seq,
        path,
        trace.total_us(),
        trace.engine_tick,
    );
    let first = match trace.stages.first() {
        Some(s) => s.at_us,
        None => return out,
    };
    let total = trace.total_us().max(1);
    for sample in &trace.stages {
        let offset = sample.at_us.saturating_sub(first);
        let dur = stage_duration_us(trace, sample.stage).unwrap_or(0);
        let lead = (offset * BAR_WIDTH / total) as usize; // cast-ok: <= BAR_WIDTH
        let fill = ((dur * BAR_WIDTH).div_ceil(total) as usize) // cast-ok: <= BAR_WIDTH
            .clamp(1, BAR_WIDTH as usize - lead.min(BAR_WIDTH as usize - 1)); // cast-ok: small constant
        let _ = writeln!(
            out,
            "{:<10} {:>8} +{:<8} {}{}",
            sample.stage.name(),
            dur,
            offset,
            " ".repeat(lead.min(BAR_WIDTH as usize - 1)), // cast-ok: small constant
            "#".repeat(fill),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use da_proto::ids::ClientId;
    use da_proto::reply::TraceStageSample;

    fn trace(seq: u32, stamps: &[(TraceStage, u64)]) -> TraceData {
        TraceData {
            client: ClientId(1),
            seq,
            opcode: 12,
            fast_path: seq.is_multiple_of(2),
            shard_wait_us: 3,
            engine_tick: 40,
            stages: stamps
                .iter()
                .map(|&(stage, at_us)| TraceStageSample { stage, at_us })
                .collect(),
        }
    }

    fn sample() -> TraceReport {
        TraceReport {
            traces: vec![
                trace(
                    2,
                    &[
                        (TraceStage::Ingress, 100),
                        (TraceStage::Dispatch, 150),
                        (TraceStage::Engine, 900),
                        (TraceStage::Outbound, 920),
                        (TraceStage::Drain, 1100),
                    ],
                ),
                trace(
                    3,
                    &[
                        (TraceStage::Ingress, 2000),
                        (TraceStage::Dispatch, 2010),
                        (TraceStage::Drain, 2040),
                    ],
                ),
            ],
        }
    }

    #[test]
    fn worst_picks_longest_total() {
        let report = sample();
        assert_eq!(report.worst().expect("non-empty").seq, 2);
    }

    #[test]
    fn attribution_skips_unstamped_stages() {
        let report = sample();
        let rows = report.stage_attribution();
        let names: Vec<&str> = rows.iter().map(|r| r.0).collect();
        assert_eq!(names, ["dispatch", "engine", "outbound", "drain"]);
        let dispatch = rows[0];
        assert_eq!(dispatch.1, 10); // p50 of {50, 10}
        assert_eq!(dispatch.2, 50);
    }

    #[test]
    fn render_has_waterfall_rows() {
        let text = sample().render();
        assert!(text.contains("2 retained"));
        assert!(text.contains("worst:"));
        assert!(text.contains("seq 2"));
        assert!(text.contains("fast path"));
        assert!(text.contains("1000 us total"));
        assert!(text.contains('#'));
        assert!(text.contains("ingress"));
        assert!(text.contains("drain"));
    }

    #[test]
    fn empty_report_renders_notice() {
        let text = TraceReport { traces: Vec::new() }.render();
        assert!(text.contains("none recorded yet"));
    }
}
