//! A reference audio manager.
//!
//! "Because the audio protocol allows multiple clients to access the
//! audio hardware simultaneously, an application similar to a window
//! manager is needed to enforce contention policy. We call this the audio
//! manager" (paper §4.3). This client claims map/raise redirection
//! (paper §5.8) and arbitrates with a pluggable policy.

use da_alib::{AlibError, Connection};
use da_proto::event::Event;
use da_proto::ids::{ClientId, LoudId};
use std::time::Duration;

/// What the manager decides about a redirected request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Let the operation proceed.
    Allow,
    /// Silently refuse the operation.
    Deny,
}

/// Contention policy: inspects the requesting client and LOUD.
pub trait MapPolicy: Send {
    /// Decides a redirected map request.
    fn on_map(&mut self, loud: LoudId, client: ClientId) -> Verdict;

    /// Decides a redirected raise request.
    fn on_raise(&mut self, loud: LoudId, client: ClientId) -> Verdict;
}

/// The permissive default policy: everything is allowed (the protocol's
/// "sensible defaults in the absence of an audio manager" made explicit).
#[derive(Debug, Default)]
pub struct AllowAll;

impl MapPolicy for AllowAll {
    fn on_map(&mut self, _loud: LoudId, _client: ClientId) -> Verdict {
        Verdict::Allow
    }

    fn on_raise(&mut self, _loud: LoudId, _client: ClientId) -> Verdict {
        Verdict::Allow
    }
}

/// A quota policy: each client may hold at most `max_mapped` mapped
/// LOUDs; raises are always allowed.
#[derive(Debug)]
pub struct QuotaPolicy {
    /// Maximum simultaneously mapped LOUDs per client.
    pub max_mapped: usize,
    mapped: std::collections::HashMap<u32, Vec<u32>>,
}

impl QuotaPolicy {
    /// Creates a quota policy.
    pub fn new(max_mapped: usize) -> Self {
        QuotaPolicy { max_mapped, mapped: Default::default() }
    }
}

impl MapPolicy for QuotaPolicy {
    fn on_map(&mut self, loud: LoudId, client: ClientId) -> Verdict {
        let entry = self.mapped.entry(client.0).or_default();
        if entry.len() >= self.max_mapped {
            return Verdict::Deny;
        }
        entry.push(loud.0);
        Verdict::Allow
    }

    fn on_raise(&mut self, _loud: LoudId, _client: ClientId) -> Verdict {
        Verdict::Allow
    }
}

/// Outcome counters from one processing pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ManagerStats {
    /// Map requests allowed.
    pub maps_allowed: u64,
    /// Map requests denied.
    pub maps_denied: u64,
    /// Raise requests allowed.
    pub raises_allowed: u64,
    /// Raise requests denied.
    pub raises_denied: u64,
}

/// The audio manager client.
pub struct AudioManager<P: MapPolicy> {
    policy: P,
    stats: ManagerStats,
}

impl<P: MapPolicy> AudioManager<P> {
    /// Claims redirection on the connection and returns the manager.
    pub fn attach(conn: &mut Connection, policy: P) -> Result<Self, AlibError> {
        conn.set_redirect(true)?;
        // Synchronise so a racing second manager gets its error now.
        conn.sync()?;
        if let Some((_, error)) = conn.take_error() {
            return Err(AlibError::Server { seq: 0, error });
        }
        Ok(AudioManager { policy, stats: ManagerStats::default() })
    }

    /// Statistics so far.
    pub fn stats(&self) -> ManagerStats {
        self.stats
    }

    /// Processes redirected requests for up to `window`; returns how many
    /// were handled.
    pub fn process(&mut self, conn: &mut Connection, window: Duration) -> Result<usize, AlibError> {
        let deadline = std::time::Instant::now() + window;
        let mut handled = 0;
        loop {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return Ok(handled);
            }
            let ev = conn.next_event(left.min(Duration::from_millis(20)))?;
            match ev {
                Some(Event::MapRequest { loud, client }) => {
                    match self.policy.on_map(loud, client) {
                        Verdict::Allow => {
                            conn.allow_map(loud)?;
                            self.stats.maps_allowed += 1;
                        }
                        Verdict::Deny => self.stats.maps_denied += 1,
                    }
                    handled += 1;
                }
                Some(Event::RaiseRequest { loud, client }) => {
                    match self.policy.on_raise(loud, client) {
                        Verdict::Allow => {
                            conn.allow_raise(loud)?;
                            self.stats.raises_allowed += 1;
                        }
                        Verdict::Deny => self.stats.raises_denied += 1,
                    }
                    handled += 1;
                }
                Some(_) => {}
                None => {}
            }
        }
    }

    /// Releases redirection.
    pub fn detach(self, conn: &mut Connection) -> Result<(), AlibError> {
        conn.set_redirect(false)
    }
}
