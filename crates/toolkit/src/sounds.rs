//! Format-hiding sound handles.
//!
//! The toolkit hides "the location and format of sound data" (paper
//! §4.2): applications hand over linear PCM, WAV bytes or a catalogue
//! name and get a playable [`SoundHandle`].

use da_alib::{AlibError, Connection};
use da_proto::ids::SoundId;
use da_proto::types::{Encoding, SoundType};
use std::time::Duration;

/// A sound living on the server, with its type remembered client-side.
#[derive(Debug, Clone, Copy)]
pub struct SoundHandle {
    /// The server-side sound id.
    pub id: SoundId,
    /// The sound's type.
    pub stype: SoundType,
    /// Length in sample frames at upload time.
    pub frames: u64,
}

impl SoundHandle {
    /// Uploads linear PCM, letting the toolkit pick the telephone-quality
    /// default representation.
    pub fn from_pcm(conn: &mut Connection, rate: u32, pcm: &[i16]) -> Result<Self, AlibError> {
        let stype = SoundType { encoding: Encoding::ULaw, sample_rate: rate, channels: 1 };
        Self::from_pcm_typed(conn, stype, pcm)
    }

    /// Uploads linear PCM into a specific sound type.
    pub fn from_pcm_typed(
        conn: &mut Connection,
        stype: SoundType,
        pcm: &[i16],
    ) -> Result<Self, AlibError> {
        let id = conn.upload_pcm(stype, pcm)?;
        Ok(SoundHandle { id, stype, frames: pcm.len() as u64 / stype.channels.max(1) as u64 })
    }

    /// Uploads the contents of a RIFF/WAVE file.
    pub fn from_wav(conn: &mut Connection, wav_bytes: &[u8]) -> Result<Self, AlibError> {
        let wav = da_dsp::wav::decode(wav_bytes)
            .map_err(|e| AlibError::Connection(format!("bad wav: {e}")))?;
        let stype = SoundType {
            encoding: Encoding::Pcm16,
            sample_rate: wav.sample_rate,
            channels: wav.channels.min(255) as u8,
        };
        Self::from_pcm_typed(conn, stype, &wav.samples)
    }

    /// Binds a server catalogue sound.
    pub fn from_catalog(
        conn: &mut Connection,
        catalog: &str,
        name: &str,
    ) -> Result<Self, AlibError> {
        let id = conn.open_catalog_sound(catalog, name)?;
        let (stype, _bytes, frames, _complete) = conn.query_sound(id)?;
        Ok(SoundHandle { id, stype, frames })
    }

    /// Wraps an existing sound id, querying its metadata.
    pub fn wrap(conn: &mut Connection, id: SoundId) -> Result<Self, AlibError> {
        let (stype, _bytes, frames, _complete) = conn.query_sound(id)?;
        Ok(SoundHandle { id, stype, frames })
    }

    /// Downloads the sound and decodes it to linear PCM.
    pub fn download_pcm(&self, conn: &mut Connection) -> Result<Vec<i16>, AlibError> {
        let data = conn.read_sound_all(self.id)?;
        Ok(da_alib::connection::decode_from(self.stype, &data))
    }

    /// Downloads the sound as a PCM-16 WAV file.
    pub fn download_wav(&self, conn: &mut Connection) -> Result<Vec<u8>, AlibError> {
        let pcm = self.download_pcm(conn)?;
        Ok(da_dsp::wav::encode_pcm16(self.stype.sample_rate, self.stype.channels as u16, &pcm))
    }

    /// The sound's duration.
    pub fn duration(&self) -> Duration {
        if self.stype.sample_rate == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros(self.frames * 1_000_000 / self.stype.sample_rate as u64)
    }

    /// Refreshes the cached frame count (after recording into the sound).
    pub fn refresh(&mut self, conn: &mut Connection) -> Result<(), AlibError> {
        let (_, _, frames, _) = conn.query_sound(self.id)?;
        self.frames = frames;
        Ok(())
    }
}
