//! The audio toolkit: policy-free building blocks above Alib.
//!
//! "We have built a toolkit that sits on top of Alib. The goals of the
//! toolkit are to: hide or automate wiring of devices for greater
//! portability, hide the location and format of sound data, hide and
//! manage device queue management, and provide mechanisms for
//! synchronizing audio with other media" (paper §4.2). The toolkit is
//! policy free: it provides mechanism, not interaction style.
//!
//! - [`builders`] — one-call construction of the common LOUD shapes:
//!   playback, recording, telephone dialogues, and the §5.9 answering
//!   machine;
//! - [`sounds`] — format-hiding sound handles (PCM in, any encoding up);
//! - [`soundviewer`] — the Figure 6-1 Soundviewer as a headless model
//!   driven by synchronization events;
//! - [`dialogue`] — touch-tone menus for telephone-based interfaces;
//! - [`manager`] — a reference audio manager enforcing contention policy
//!   through map/raise redirection (paper §4.3, §5.8);
//! - [`stats`] — server-statistics snapshots and the top-style rendering
//!   behind the `audiostat` tool;
//! - [`traces`] — flight-recorder trace reports: per-stage latency
//!   attribution and the waterfall panel behind `audiostat --watch`.

pub mod builders;
pub mod dialogue;
pub mod manager;
pub mod soundviewer;
pub mod sounds;
pub mod stats;
pub mod traces;
