//! The Soundviewer model.
//!
//! The paper's prototype includes "a graphical sound viewer widget ...
//! The widget displays a continually updated bar graph as a sound is
//! played. Audio server synchronization events are used to control the
//! graphics" (paper §6, Figure 6-1). This is that widget as a headless
//! model: it consumes [`da_proto::event::Event::SyncMark`] events and
//! maintains playhead, tick marks and a selection; `render_ascii`
//! produces the bar graph for terminal applications (the examples use
//! it), and a GUI would read the same state.

use da_proto::event::Event;
use da_proto::ids::{SoundId, VDeviceId};

/// Display modes of the Soundviewer (Figure 6-1 shows several).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DisplayMode {
    /// A filled bar up to the playhead.
    #[default]
    Bar,
    /// Tick marks every second with a moving cursor.
    Ticks,
}

/// The Soundviewer model.
#[derive(Debug, Clone)]
pub struct Soundviewer {
    /// The device whose sync marks drive this view.
    pub vdev: VDeviceId,
    /// The sound being viewed, if known.
    pub sound: Option<SoundId>,
    /// Total length in frames.
    pub total_frames: u64,
    /// Sample rate (for tick marks).
    pub sample_rate: u32,
    /// Current playhead position in frames.
    pub position: u64,
    /// Selected region (start, end) in frames, if any — "a part of the
    /// sound that has been selected, to be pasted into another
    /// application" (paper §6).
    pub selection: Option<(u64, u64)>,
    /// Display mode.
    pub mode: DisplayMode,
    /// Sync marks consumed.
    pub marks_seen: u64,
}

impl Soundviewer {
    /// Creates a viewer for a device playing a sound of `total_frames`.
    pub fn new(vdev: VDeviceId, total_frames: u64, sample_rate: u32) -> Self {
        Soundviewer {
            vdev,
            sound: None,
            total_frames,
            sample_rate,
            position: 0,
            selection: None,
            mode: DisplayMode::default(),
            marks_seen: 0,
        }
    }

    /// Feeds one server event; returns `true` if the view changed.
    pub fn handle_event(&mut self, event: &Event) -> bool {
        match event {
            Event::SyncMark { vdev, sound, position, .. } if *vdev == self.vdev => {
                self.sound = *sound;
                self.position = (*position).min(self.total_frames);
                self.marks_seen += 1;
                true
            }
            Event::PlayStarted { vdev, sound } if *vdev == self.vdev => {
                self.sound = Some(*sound);
                self.position = 0;
                true
            }
            _ => false,
        }
    }

    /// Fraction played, 0.0–1.0.
    pub fn fraction(&self) -> f64 {
        if self.total_frames == 0 {
            return 0.0;
        }
        self.position as f64 / self.total_frames as f64
    }

    /// Selects a region by frame indices (clamped and ordered).
    pub fn select(&mut self, start: u64, end: u64) {
        let a = start.min(end).min(self.total_frames);
        let b = start.max(end).min(self.total_frames);
        self.selection = if a == b { None } else { Some((a, b)) };
    }

    /// Clears the selection.
    pub fn clear_selection(&mut self) {
        self.selection = None;
    }

    /// Renders the bar graph, `width` characters wide.
    ///
    /// Played material is `█`, unplayed `·`, the selection is marked with
    /// `▒` (overlaying unplayed) — the darkened area and dashed selection
    /// of Figure 6-1.
    pub fn render_ascii(&self, width: usize) -> String {
        let width = width.max(4);
        let mut chars: Vec<char> = Vec::with_capacity(width);
        let frames_per_cell = (self.total_frames.max(1) as f64) / width as f64;
        for i in 0..width {
            let cell_start = (i as f64 * frames_per_cell) as u64;
            let cell_mid = ((i as f64 + 0.5) * frames_per_cell) as u64;
            let selected = self
                .selection
                .map(|(a, b)| cell_mid >= a && cell_mid < b)
                .unwrap_or(false);
            let played = cell_start < self.position;
            let tick = match self.mode {
                DisplayMode::Ticks => {
                    let sec = self.sample_rate.max(1) as f64;
                    let cell_secs_start = cell_start as f64 / sec;
                    let cell_secs_end = (cell_start as f64 + frames_per_cell) / sec;
                    cell_secs_start.ceil() < cell_secs_end.ceil()
                        || (cell_secs_start == 0.0 && i == 0)
                }
                DisplayMode::Bar => false,
            };
            chars.push(match (selected, played, tick) {
                (true, _, _) => '▒',
                (false, true, _) => '█',
                (false, false, true) => '|',
                (false, false, false) => '·',
            });
        }
        let secs = self.total_frames as f64 / self.sample_rate.max(1) as f64;
        format!("[{}] {:>4.1}s {:>3.0}%", chars.into_iter().collect::<String>(), secs, self.fraction() * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mark(vdev: u32, pos: u64) -> Event {
        Event::SyncMark {
            vdev: VDeviceId(vdev),
            sound: Some(SoundId(9)),
            position: pos,
            device_time: 0,
        }
    }

    #[test]
    fn tracks_sync_marks() {
        let mut v = Soundviewer::new(VDeviceId(1), 8000, 8000);
        assert!(v.handle_event(&mark(1, 800)));
        assert_eq!(v.position, 800);
        assert!((v.fraction() - 0.1).abs() < 1e-9);
        assert!(v.handle_event(&mark(1, 4000)));
        assert_eq!(v.marks_seen, 2);
    }

    #[test]
    fn ignores_other_devices() {
        let mut v = Soundviewer::new(VDeviceId(1), 8000, 8000);
        assert!(!v.handle_event(&mark(2, 800)));
        assert_eq!(v.position, 0);
    }

    #[test]
    fn position_clamped_to_total() {
        let mut v = Soundviewer::new(VDeviceId(1), 100, 8000);
        v.handle_event(&mark(1, 5000));
        assert_eq!(v.position, 100);
        assert_eq!(v.fraction(), 1.0);
    }

    #[test]
    fn play_started_resets() {
        let mut v = Soundviewer::new(VDeviceId(1), 8000, 8000);
        v.handle_event(&mark(1, 4000));
        assert!(v.handle_event(&Event::PlayStarted { vdev: VDeviceId(1), sound: SoundId(3) }));
        assert_eq!(v.position, 0);
        assert_eq!(v.sound, Some(SoundId(3)));
    }

    #[test]
    fn bar_rendering_progresses() {
        let mut v = Soundviewer::new(VDeviceId(1), 1000, 8000);
        let empty = v.render_ascii(20);
        assert!(!empty.contains('█'));
        v.handle_event(&mark(1, 500));
        let half = v.render_ascii(20);
        let filled = half.chars().filter(|&c| c == '█').count();
        assert!((9..=11).contains(&filled), "{half}");
        v.handle_event(&mark(1, 1000));
        let full = v.render_ascii(20);
        assert_eq!(full.chars().filter(|&c| c == '█').count(), 20);
        assert!(full.contains("100%"));
    }

    #[test]
    fn selection_renders_and_clamps() {
        let mut v = Soundviewer::new(VDeviceId(1), 1000, 8000);
        v.select(900, 200); // reversed and partly out of range
        assert_eq!(v.selection, Some((200, 900)));
        let s = v.render_ascii(10);
        assert!(s.contains('▒'), "{s}");
        v.select(5, 5);
        assert_eq!(v.selection, None);
        v.clear_selection();
        assert_eq!(v.selection, None);
    }

    #[test]
    fn tick_mode_marks_seconds() {
        let mut v = Soundviewer::new(VDeviceId(1), 8000 * 4, 8000);
        v.mode = DisplayMode::Ticks;
        let s = v.render_ascii(40);
        assert!(s.contains('|'), "{s}");
    }

    #[test]
    fn zero_length_sound_is_safe() {
        let v = Soundviewer::new(VDeviceId(1), 0, 8000);
        assert_eq!(v.fraction(), 0.0);
        let s = v.render_ascii(8);
        assert!(s.contains("0%") || s.contains("  0%"), "{s}");
    }
}
