//! A graphical speed dialer / address book (paper §1.2).
//!
//! "With the ability to control the telephone, a workstation can be used
//! to place calls from graphical speed dialers, an address book..."
//! This example keeps an address book, places calls through the server's
//! telephone device, reports call progress, and handles the busy and
//! no-answer outcomes.
//!
//! Run with `cargo run -p da-examples --bin speed_dialer`.

use da_alib::Connection;
use da_server::{AudioServer, ServerConfig};
use da_toolkit::builders::PhoneLoud;
use std::time::Duration;

struct Entry {
    name: &'static str,
    number: &'static str,
}

fn main() {
    let server = AudioServer::start(ServerConfig::default()).expect("start server");
    let control = server.control();
    let mut conn =
        Connection::establish(server.connect_pipe(), "speed-dialer").expect("connect");

    let address_book = [
        Entry { name: "Susan", number: "555-1001" },
        Entry { name: "Chris", number: "555-1002" },
        Entry { name: "Nobody", number: "555-9999" }, // not in service
    ];

    // The outside world: Susan answers after one ring and says hello;
    // Chris's line exists but he never answers.
    let susan = control.add_remote_party("555-1001");
    control.with_party(susan, |p, _| {
        p.auto_answer_after = Some(4000);
        p.say(&da_dsp::tone::sine(8000, 300.0, 8000, 10000));
    });
    let _chris = control.add_remote_party("555-1002");
    control.with_core(|c| c.hw.pstn.set_ring_timeout(16_000)); // 2 s no-answer

    let phone = PhoneLoud::build(&mut conn, vec![]).expect("phone loud");

    for entry in &address_book {
        println!("dialing {} at {} ...", entry.name, entry.number);
        let connected = phone
            .dial_blocking(&mut conn, entry.number, Duration::from_secs(60))
            .expect("dial");
        if connected {
            println!("  connected! saying hello");
            phone
                .speak_blocking(&mut conn, "hello from the workstation", Duration::from_secs(60))
                .expect("speak");
            phone.hang_up(&mut conn).expect("hang up");
            println!("  call complete");
        } else {
            println!("  busy or no answer");
            phone.hang_up(&mut conn).expect("hang up");
        }
    }

    // Susan heard the synthesized greeting.
    let heard = control.with_party(susan, |p, _| p.heard().to_vec());
    println!(
        "Susan heard {} frames of us (RMS {:.0})",
        heard.len(),
        da_dsp::analysis::rms(&heard)
    );

    server.shutdown();
    println!("done: {} address-book entries dialed", address_book.len());
}
