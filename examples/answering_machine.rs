//! The answering machine of paper §5.9, end to end.
//!
//! Builds the exact LOUD tree of Figures 5-2/5-3, preloads the command
//! queue of Figure 5-4 (answer → greeting → beep → record), monitors the
//! device-LOUD telephone for rings while unmapped, and services two
//! complete incoming calls — one that leaves a message and one that hangs
//! up mid-greeting (the paper's exception case).
//!
//! Run with `cargo run -p da-examples --bin answering_machine`.

use da_alib::Connection;
use da_proto::command::RecordTermination;
use da_proto::event::{CallState, Event, EventMask};
use da_proto::types::{DeviceClass, SoundType};
use da_server::{AudioServer, ServerConfig};
use da_toolkit::builders::AnsweringMachine;
use da_toolkit::sounds::SoundHandle;
use std::time::Duration;

fn main() {
    let server = AudioServer::start(ServerConfig::default()).expect("start server");
    let control = server.control();
    let mut conn = Connection::establish(server.connect_pipe(), "answering-machine")
        .expect("connect");

    // The greeting is synthesized text — in 1991 this would have come
    // from the DECtalk; here the software synthesizer speaks it.
    let tts = da_synth::tts::Synthesizer::new(8000);
    let greeting_pcm = tts.speak("you have reached five five five. please leave a message");
    let greeting = SoundHandle::from_pcm(&mut conn, 8000, &greeting_pcm).expect("greeting");
    let beep = SoundHandle::from_catalog(&mut conn, "system", "beep").expect("beep");
    println!(
        "greeting: {} frames; beep: {} frames",
        greeting.frames, beep.frames
    );

    // Build the §5.9 structure (stays unmapped between calls).
    let am = AnsweringMachine::build(&mut conn, vec![]).expect("build");

    // Monitor the device-LOUD telephone: "Because the answering machine
    // LOUD is unmapped, the application cannot tell, from the LOUD, if
    // the telephone rings. Therefore it monitors the device LOUD
    // telephone" (§5.9 footnote).
    let (devices, _) = conn.query_device_loud().expect("device loud");
    let phone_dev =
        devices.iter().find(|d| d.class == DeviceClass::Telephone).expect("telephone");
    conn.select_events(phone_dev.id, EventMask::DEVICE).expect("select");
    conn.sync().expect("sync");

    let wait_frames = (greeting.frames + beep.frames + 4000) as usize;
    for call_no in 1..=2 {
        // Script the outside world.
        let caller_number = format!("555-010{call_no}");
        let caller = control.add_remote_party(&caller_number);
        control.with_party(caller, |p, pstn| {
            if call_no == 1 {
                // Waits out the greeting and beep, speaks for 1.5 s,
                // hangs up.
                p.say(&vec![0i16; wait_frames]);
                p.say(&da_dsp::tone::sine(8000, 350.0, 12000, 12000));
            }
            // Call 2 says nothing and will hang up mid-greeting.
            p.call(pstn, "555-0100");
        });

        // Wait for the ring (device LOUD).
        let ring = conn
            .wait_event(Duration::from_secs(20), |e| {
                matches!(e, Event::CallProgress { state: CallState::Ringing, .. })
            })
            .expect("ring");
        if let Event::CallProgress { caller_id, .. } = &ring {
            println!("call {call_no}: ringing, caller id {caller_id:?}");
        }

        // Arm the queue for THIS call and engage.
        let message = conn.create_sound(SoundType::TELEPHONE).expect("message sound");
        am.arm(&mut conn, greeting.id, beep.id, message, RecordTermination::OnHangup)
            .expect("arm");
        am.engage(&mut conn).expect("engage");

        if call_no == 2 {
            // The impatient caller hangs up one second into the greeting.
            control.run_until(Duration::from_secs(10), |c| c.device_time > 0);
            std::thread::sleep(Duration::from_millis(30));
            control.with_party(caller, |p, pstn| p.hang_up(pstn));
            println!("call {call_no}: caller hung up early");
            // The application sees the hangup and resets (the paper's
            // exception handling: "The caller may hang up before the
            // beep is played").
            let _ = conn.wait_event(Duration::from_secs(20), |e| {
                matches!(e, Event::CallProgress { state: CallState::HungUp, .. })
                    | matches!(e, Event::RecordStopped { .. })
            });
            am.disengage(&mut conn).expect("disengage");
            conn.sync().expect("sync");
            continue;
        }

        // Normal call: caller hangs up after speaking.
        control.run_until(Duration::from_secs(60), |c| {
            c.remote_parties[caller].pending_say() == 0
        });
        control.with_party(caller, |p, pstn| p.hang_up(pstn));

        let stopped = conn
            .wait_event(Duration::from_secs(30), |e| matches!(e, Event::RecordStopped { .. }))
            .expect("record stop");
        if let Event::RecordStopped { frames, reason, .. } = stopped {
            println!("call {call_no}: message recorded, {frames} frames, ended by {reason:?}");
        }
        let handle = SoundHandle::wrap(&mut conn, message).expect("wrap");
        let pcm = handle.download_pcm(&mut conn).expect("download");
        println!(
            "call {call_no}: message RMS {:.0}, dominant energy at 350 Hz: {:.0}",
            da_dsp::analysis::rms(&pcm),
            da_dsp::analysis::goertzel_power(&pcm, 8000, 350.0),
        );
        am.disengage(&mut conn).expect("disengage");
        // Let the hang-up reach the line before the next call arrives.
        conn.sync().expect("sync");
        control.run_until(Duration::from_secs(10), |c| {
            use da_hw::registry::HwSlot;
            match c.hw.slot(2) {
                Some(HwSlot::Line(l)) => {
                    c.hw.pstn.state(l) == da_hw::pstn::LineState::OnHook
                }
                _ => true,
            }
        });
    }

    server.shutdown();
    println!("done: two calls serviced");
}
