//! Quickstart: start a server, connect, play a tone, watch events.
//!
//! Demonstrates the full stack of paper Figure 4-1 — application →
//! toolkit → Alib → (transport) → server → device — in thirty lines of
//! application code.
//!
//! Run with `cargo run -p da-examples --bin quickstart`.

use da_alib::Connection;
use da_proto::event::Event;
use da_server::{AudioServer, ServerConfig};
use da_toolkit::builders::PlayLoud;
use da_toolkit::sounds::SoundHandle;
use std::time::Duration;

fn main() {
    // 1. A server owning the simulated desktop hardware. Real
    //    deployments run one per workstation; here it is in-process.
    let server = AudioServer::start(ServerConfig::default()).expect("start server");
    let control = server.control();
    control.set_speaker_capture(0, 200_000);

    // 2. A client connection (the paper's Alib).
    let mut conn =
        Connection::establish(server.connect_pipe(), "quickstart").expect("connect");
    let (vendor, major, minor, _) = conn.server_info().expect("server info");
    println!("connected to '{vendor}' speaking protocol {major}.{minor}");

    let (devices, _) = conn.query_device_loud().expect("device loud");
    println!("device LOUD ({} physical devices):", devices.len());
    for d in &devices {
        println!("  {:?} {:?}", d.id, d.class);
    }

    // 3. A playback structure from the toolkit: player → output, wired,
    //    mapped.
    let play = PlayLoud::build(&mut conn, vec![]).expect("build play loud");

    // 4. A sound: one second of A440 uploaded as telephone-quality µ-law.
    let pcm = da_dsp::tone::sine(8000, 440.0, 8000, 12000);
    let sound = SoundHandle::from_pcm(&mut conn, 8000, &pcm).expect("upload");
    println!("uploaded {} frames ({:?})", sound.frames, sound.duration());

    // 5. Play it, consuming queue events until completion.
    play.play(&mut conn, sound.id).expect("play");
    loop {
        match conn.next_event(Duration::from_secs(10)).expect("event") {
            Some(Event::PlayStarted { .. }) => println!("play started"),
            Some(Event::SyncMark { position, .. }) => {
                println!("  sync mark at frame {position}");
            }
            Some(Event::CommandDone { .. }) => {
                println!("play complete");
                break;
            }
            Some(other) => println!("  (event: {other:?})"),
            None => {
                println!("timed out");
                break;
            }
        }
    }

    // 6. Prove the speaker consumed exactly the audio we sent.
    control.run_until(Duration::from_secs(5), |c| c.hw.speakers[0].captured().len() >= 8000);
    let captured = control.take_captured(0);
    // Playback may start mid-tick; align past the leading silence before
    // comparing waveforms.
    let start = captured.iter().position(|&s| s != 0).unwrap_or(0);
    let aligned = &captured[start..];
    let n = aligned.len().min(pcm.len() - 1);
    let snr = da_dsp::analysis::snr_db(&pcm[1..1 + n], &aligned[..n]);
    println!(
        "speaker consumed {} frames; round-trip SNR through µ-law: {:.1} dB",
        captured.len(),
        snr
    );

    server.shutdown();
    println!("server shut down cleanly");
}
