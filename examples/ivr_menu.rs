//! Telephone-based remote access with a touch-tone menu (paper §1.2).
//!
//! "Speech synthesis and recognition allow for remote, telephone-based
//! access to information accessible by the workstation." A remote user
//! calls the workstation; the application answers, speaks a menu, and
//! reacts to DTMF selections — the voice-mail-by-phone pattern.
//!
//! Run with `cargo run -p da-examples --bin ivr_menu`.

use da_alib::Connection;
use da_server::{AudioServer, ServerConfig};
use da_toolkit::builders::PhoneLoud;
use da_toolkit::dialogue::TouchToneMenu;
use std::time::Duration;

fn main() {
    let server = AudioServer::start(ServerConfig::default()).expect("start server");
    let control = server.control();
    let mut conn = Connection::establish(server.connect_pipe(), "ivr").expect("connect");

    let phone = PhoneLoud::build(&mut conn, vec![]).expect("phone loud");
    conn.sync().expect("sync");

    // The remote user: calls in, listens to the prompt, presses 2.
    let user = control.add_remote_party("555-4242");
    control.with_party(user, |p, pstn| {
        // The menu prompt is ~8 s of synthesized speech; wait it out,
        // then press a key.
        p.say(&vec![0i16; 8000 * 9]);
        p.send_dtmf("2");
        p.call(pstn, "555-0100");
    });

    // Answer the incoming call.
    let caller_id = phone.answer_blocking(&mut conn, Duration::from_secs(30)).expect("answer");
    println!("answered call from {caller_id:?}");

    // Run the menu.
    let menu = TouchToneMenu::new("workstation remote access")
        .option(b'1', "press one to hear new mail")
        .option(b'2', "press two for your calendar")
        .option(b'3', "press three to hang up");
    let choice = menu.run(&mut conn, &phone).expect("menu");
    println!("caller chose {:?}", choice.map(|c| c as char));

    match choice {
        Some(b'1') => {
            phone
                .speak_blocking(&mut conn, "you have no new mail", Duration::from_secs(60))
                .expect("speak");
        }
        Some(b'2') => {
            phone
                .speak_blocking(
                    &mut conn,
                    "your next appointment is at three pm",
                    Duration::from_secs(60),
                )
                .expect("speak");
            println!("read the calendar to the caller");
        }
        _ => println!("no valid selection"),
    }

    phone.hang_up(&mut conn).expect("hang up");
    server.shutdown();
    println!("done");
}
