//! A workstation voice-mail browser (paper §1.2, Figure 1-1).
//!
//! "Workstation-based personal voice mail allows graphic display and
//! interaction with voice messages, and can provide the ability to move
//! messages to other voice-capable applications, such as an appointment
//! calendar." This example records a mailbox of messages, browses them
//! with the Soundviewer (ASCII rendering of Figure 6-1), selects a
//! region, and "moves" a message to a calendar application by attaching
//! it as a property — the protocol's inter-application data channel
//! (paper §5.8).
//!
//! Run with `cargo run -p da-examples --bin voicemail`.

use da_alib::Connection;
use da_proto::event::Event;
use da_server::{AudioServer, ServerConfig};
use da_toolkit::builders::PlayLoud;
use da_toolkit::soundviewer::{DisplayMode, Soundviewer};
use da_toolkit::sounds::SoundHandle;
use std::time::Duration;

fn main() {
    let server = AudioServer::start(ServerConfig::default()).expect("start server");
    let mut conn = Connection::establish(server.connect_pipe(), "voicemail").expect("connect");

    // Three "messages" (synthesized callers of different pitch/length).
    let tts = da_synth::tts::Synthesizer::new(8000);
    let texts = [
        "meeting moved to three pm",
        "call me back about the budget",
        "lunch on friday",
    ];
    let mut mailbox: Vec<SoundHandle> = Vec::new();
    for (i, text) in texts.iter().enumerate() {
        let mut voice = da_synth::tts::Synthesizer::new(8000);
        voice.set_values(180, 100 + 30 * i as u16);
        let pcm = voice.speak(text);
        mailbox.push(SoundHandle::from_pcm(&mut conn, 8000, &pcm).expect("upload"));
    }
    let _ = tts;

    let play = PlayLoud::build(&mut conn, vec![]).expect("play loud");

    // Browse: play each message while the Soundviewer tracks it.
    for (i, msg) in mailbox.iter().enumerate() {
        let mut viewer = Soundviewer::new(play.player, msg.frames, 8000);
        viewer.mode = if i == 1 { DisplayMode::Ticks } else { DisplayMode::Bar };
        println!("message {} ({}): {:?}", i + 1, texts[i], msg.duration());
        play.play(&mut conn, msg.id).expect("play");
        while let Some(ev) = conn.next_event(Duration::from_secs(10)).expect("event") {
            if viewer.handle_event(&ev) {
                println!("  {}", viewer.render_ascii(48));
            }
            if matches!(ev, Event::CommandDone { .. }) {
                break;
            }
        }
    }

    // Select the middle of message 2 (the dashes of Figure 6-1)...
    let msg = &mailbox[1];
    let mut viewer = Soundviewer::new(play.player, msg.frames, 8000);
    viewer.select(msg.frames / 4, 3 * msg.frames / 4);
    println!("selection in message 2: {}", viewer.render_ascii(48));

    // ... and paste it into the "calendar": attach the selected audio as
    // a property on a calendar LOUD owned by another client.
    let mut calendar =
        Connection::establish(server.connect_pipe(), "calendar").expect("calendar connect");
    let cal_loud = calendar.create_loud(None).expect("calendar loud");
    calendar.sync().expect("sync");

    let (a, b) = viewer.selection.expect("selection set");
    let pcm = msg.download_pcm(&mut conn).expect("download");
    let clip = &pcm[a as usize..b as usize];
    let clip_handle = SoundHandle::from_pcm(&mut calendar, 8000, clip).expect("clip upload");

    let appt = calendar.intern_atom("APPOINTMENT_AUDIO").expect("atom");
    let integer = calendar.intern_atom("INTEGER").expect("atom");
    calendar
        .change_property(
            cal_loud,
            appt,
            integer,
            clip_handle.id.raw().to_le_bytes().to_vec(),
        )
        .expect("property");
    let stored = calendar.get_property(cal_loud, appt).expect("get").expect("present");
    let stored_id = u32::from_le_bytes(stored.value[..4].try_into().unwrap());
    println!(
        "calendar received clip: sound {:#x}, {} frames",
        stored_id,
        clip_handle.frames
    );

    server.shutdown();
    println!("done: {} messages browsed, 1 clip moved to the calendar", mailbox.len());
}
