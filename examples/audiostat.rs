//! audiostat: top-style server telemetry introspection.
//!
//! With a server address, connects over TCP and prints a statistics
//! snapshot every second (or once with `--once`):
//!
//! ```text
//! cargo run -p da-examples --bin audiostat -- 127.0.0.1:7700
//! cargo run -p da-examples --bin audiostat -- --once 127.0.0.1:7700
//! ```
//!
//! With no address, starts an in-process demo server, runs a scripted
//! workload against it, and prints one snapshot. In that mode the tool
//! doubles as a smoke test: it exits non-zero unless every headline
//! figure — per-opcode dispatch counts, tick percentiles, plan-cache hit
//! rate, per-client byte counters, connection-plane worker and dispatch
//! counts — came back non-zero.

use da_alib::Connection;
use da_server::core::ServerConfig;
use da_server::server::AudioServer;
use da_toolkit::builders::PlayLoud;
use da_toolkit::sounds::SoundHandle;
use da_toolkit::stats::StatsSnapshot;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let once = args.iter().any(|a| a == "--once");
    let addr = args.iter().find(|a| !a.starts_with("--")).cloned();
    let ok = match addr {
        Some(addr) => watch(&addr, once),
        None => demo(),
    };
    if !ok {
        std::process::exit(1);
    }
}

/// Connects to a running server and prints snapshots.
fn watch(addr: &str, once: bool) -> bool {
    let mut conn = match Connection::open_tcp(addr, "audiostat") {
        Ok(c) => c,
        Err(e) => {
            eprintln!("audiostat: cannot connect to {addr}: {e}");
            return false;
        }
    };
    loop {
        match StatsSnapshot::fetch(&mut conn) {
            Ok(snap) => print!("{}", snap.render()),
            Err(e) => {
                eprintln!("audiostat: {e}");
                return false;
            }
        }
        if once {
            return true;
        }
        println!();
        std::thread::sleep(Duration::from_secs(1));
    }
}

/// Starts an in-process server, exercises it, and prints one snapshot.
fn demo() -> bool {
    let config = ServerConfig { manual_ticks: true, ..ServerConfig::default() };
    let server = AudioServer::start(config).expect("start server");
    let control = server.control();
    let mut conn = Connection::establish(server.connect_pipe(), "audiostat-demo").expect("connect");

    // Scripted workload: build a playback LOUD, upload a tone, play it
    // while the engine ticks, and let a topology change force one plan
    // rebuild beyond the initial one.
    let play = PlayLoud::build(&mut conn, vec![]).expect("build play loud");
    let pcm = da_dsp::tone::sine(8000, 440.0, 4000, 12000);
    let sound = SoundHandle::from_pcm(&mut conn, 8000, &pcm).expect("upload");
    play.play(&mut conn, sound.id).expect("play");
    conn.sync().expect("sync");
    control.tick_n(20);
    let extra = PlayLoud::build(&mut conn, vec![]).expect("second loud");
    conn.sync().expect("sync");
    control.tick_n(20);
    play.stop(&mut conn).ok();
    extra.stop(&mut conn).ok();
    conn.sync().expect("sync");

    let snap = StatsSnapshot::fetch(&mut conn).expect("fetch stats");
    print!("{}", snap.render());

    // Smoke-check the headline figures.
    let mut failures = Vec::new();
    if snap.opcode_counts().is_empty() {
        failures.push("no per-opcode dispatch counts".to_string());
    }
    if snap.tick_p50_us() == 0 || snap.tick_p99_us() == 0 {
        failures.push(format!(
            "zero tick percentiles (p50 {} us, p99 {} us)",
            snap.tick_p50_us(),
            snap.tick_p99_us()
        ));
    }
    match snap.plan_cache_hit_rate() {
        Some(rate) if rate > 0.0 => {}
        other => failures.push(format!("plan-cache hit rate not positive: {other:?}")),
    }
    if !snap.clients.iter().any(|c| c.bytes_in > 0 && c.bytes_out > 0) {
        failures.push("no client with non-zero byte counters".to_string());
    }
    // Connection-plane panel: the pool size is set at startup and every
    // request above has been dispatched (sync round-tripped), so both
    // figures must be live in the same QueryServerStats wire format.
    if snap.server.gauge("conn_plane_workers").unwrap_or(0) == 0 {
        failures.push("connection plane reports zero I/O workers".to_string());
    }
    let (fast, slow) = snap.dispatch_split();
    if fast + slow == 0 {
        failures.push("no dispatches counted on either path".to_string());
    }
    server.shutdown();
    for f in &failures {
        eprintln!("audiostat: FAIL: {f}");
    }
    failures.is_empty()
}
