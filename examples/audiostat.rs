//! audiostat: top-style server telemetry introspection.
//!
//! With a server address, connects over TCP and prints a statistics
//! snapshot every second (or once with `--once`):
//!
//! ```text
//! cargo run -p da-examples --bin audiostat -- 127.0.0.1:7700
//! cargo run -p da-examples --bin audiostat -- --once 127.0.0.1:7700
//! cargo run -p da-examples --bin audiostat -- --watch 127.0.0.1:7700
//! ```
//!
//! `--watch` adds the flight-recorder panel to every refresh: per-stage
//! latency attribution percentiles plus a waterfall of the worst
//! retained trace (DESIGN.md §15). `--frames N` bounds the refresh loop
//! to N frames, for scripted runs.
//!
//! With no address, starts an in-process demo server, runs a scripted
//! workload against it, and prints one snapshot (or, under `--watch`,
//! N refresh frames with live trace panels). In that mode the tool
//! doubles as a smoke test: it exits non-zero unless every headline
//! figure — per-opcode dispatch counts, tick percentiles, plan-cache hit
//! rate, per-client byte counters, connection-plane worker and dispatch
//! counts, and in watch mode a fully-stamped trace — came back non-zero.

use da_alib::Connection;
use da_proto::event::Event;
use da_proto::reply::TraceStage;
use da_server::core::ServerConfig;
use da_server::server::AudioServer;
use da_toolkit::builders::PlayLoud;
use da_toolkit::sounds::SoundHandle;
use da_toolkit::stats::StatsSnapshot;
use da_toolkit::traces::TraceReport;
use std::time::Duration;

/// How many traces each watch frame asks the server for.
const WATCH_TRACES: u32 = 16;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let once = args.iter().any(|a| a == "--once");
    let watch_traces = args.iter().any(|a| a == "--watch");
    let frames = args
        .iter()
        .position(|a| a == "--frames")
        .and_then(|i| args.get(i + 1))
        .and_then(|n| n.parse::<u64>().ok());
    let addr = args
        .iter()
        .enumerate()
        .find(|&(i, a)| {
            !a.starts_with("--") && args.get(i.wrapping_sub(1)).map(String::as_str) != Some("--frames")
        })
        .map(|(_, a)| a.clone());
    let ok = match addr {
        Some(addr) => watch(&addr, once, watch_traces, frames),
        None if watch_traces => demo_watch(frames.unwrap_or(3)),
        None => demo(),
    };
    if !ok {
        std::process::exit(1);
    }
}

/// Connects to a running server and prints snapshots; with
/// `watch_traces`, each refresh also renders the flight-recorder panel.
fn watch(addr: &str, once: bool, watch_traces: bool, frames: Option<u64>) -> bool {
    let mut conn = match Connection::open_tcp(addr, "audiostat") {
        Ok(c) => c,
        Err(e) => {
            eprintln!("audiostat: cannot connect to {addr}: {e}");
            return false;
        }
    };
    let mut rendered = 0u64;
    loop {
        match StatsSnapshot::fetch(&mut conn) {
            Ok(snap) => print!("{}", snap.render()),
            Err(e) => {
                eprintln!("audiostat: {e}");
                return false;
            }
        }
        if watch_traces {
            match TraceReport::fetch(&mut conn, WATCH_TRACES) {
                Ok(report) => {
                    println!();
                    print!("{}", report.render());
                }
                Err(e) => {
                    eprintln!("audiostat: {e}");
                    return false;
                }
            }
        }
        rendered += 1;
        if once || frames.is_some_and(|n| rendered >= n) {
            return true;
        }
        println!();
        std::thread::sleep(Duration::from_secs(1));
    }
}

/// Starts an in-process server and renders `frames` watch refreshes,
/// each driving a play through the engine so the flight recorder has a
/// fresh fully-stamped trace to waterfall. Smoke-fails unless one shows
/// every stage.
fn demo_watch(frames: u64) -> bool {
    let config = ServerConfig { manual_ticks: true, ..ServerConfig::default() };
    let server = AudioServer::start(config).expect("start server");
    let control = server.control();
    // Capture every request: a scripted three-frame run is far below the
    // default 1-in-16 sampling rate.
    control.with_core(|c| c.tel.recorder.set_sampling(1, 0));
    let mut conn =
        Connection::establish(server.connect_pipe(), "audiostat-watch").expect("connect");
    let play = PlayLoud::build(&mut conn, vec![]).expect("build play loud");
    // Short tone: it must finish (CommandDone) within one frame's ticks.
    let pcm = da_dsp::tone::sine(8000, 440.0, 800, 12000);
    let sound = SoundHandle::from_pcm(&mut conn, 8000, &pcm).expect("upload");

    let mut saw_full_trace = false;
    for frame in 0..frames.max(1) {
        play.play(&mut conn, sound.id).expect("play");
        conn.sync().expect("sync");
        control.tick_n(20);
        let loud = play.loud;
        conn.wait_event(Duration::from_secs(5), |e| {
            matches!(e, Event::CommandDone { loud: l, .. } if *l == loud)
        })
        .expect("command done");

        let snap = StatsSnapshot::fetch(&mut conn).expect("fetch stats");
        let report = TraceReport::fetch(&mut conn, WATCH_TRACES).expect("fetch traces");
        if report.traces.iter().any(|t| t.stages.len() == TraceStage::COUNT) {
            saw_full_trace = true;
        }
        print!("{}", snap.render());
        println!();
        print!("{}", report.render());
        if frame + 1 < frames {
            println!();
        }
    }
    play.stop(&mut conn).ok();
    conn.sync().ok();
    server.shutdown();
    if !saw_full_trace {
        eprintln!("audiostat: FAIL: no fully-stamped trace recorded in watch mode");
    }
    saw_full_trace
}

/// Starts an in-process server, exercises it, and prints one snapshot.
fn demo() -> bool {
    let config = ServerConfig { manual_ticks: true, ..ServerConfig::default() };
    let server = AudioServer::start(config).expect("start server");
    let control = server.control();
    let mut conn = Connection::establish(server.connect_pipe(), "audiostat-demo").expect("connect");

    // Scripted workload: build a playback LOUD, upload a tone, play it
    // while the engine ticks, and let a topology change force one plan
    // rebuild beyond the initial one.
    let play = PlayLoud::build(&mut conn, vec![]).expect("build play loud");
    let pcm = da_dsp::tone::sine(8000, 440.0, 4000, 12000);
    let sound = SoundHandle::from_pcm(&mut conn, 8000, &pcm).expect("upload");
    play.play(&mut conn, sound.id).expect("play");
    conn.sync().expect("sync");
    control.tick_n(20);
    let extra = PlayLoud::build(&mut conn, vec![]).expect("second loud");
    conn.sync().expect("sync");
    control.tick_n(20);
    // Replay a shared catalogue sound twice: the second play's decode
    // windows must come out of the transcode cache (DESIGN.md §17).
    let ring = conn.open_catalog_sound("system", "ring").expect("open catalogue sound");
    for _ in 0..2 {
        play.play(&mut conn, ring).expect("play catalogue sound");
        conn.sync().expect("sync");
        control.tick_n(10);
    }
    play.stop(&mut conn).ok();
    extra.stop(&mut conn).ok();
    conn.sync().expect("sync");

    let snap = StatsSnapshot::fetch(&mut conn).expect("fetch stats");
    print!("{}", snap.render());

    // Smoke-check the headline figures.
    let mut failures = Vec::new();
    if snap.opcode_counts().is_empty() {
        failures.push("no per-opcode dispatch counts".to_string());
    }
    if snap.tick_p50_us() == 0 || snap.tick_p99_us() == 0 {
        failures.push(format!(
            "zero tick percentiles (p50 {} us, p99 {} us)",
            snap.tick_p50_us(),
            snap.tick_p99_us()
        ));
    }
    match snap.plan_cache_hit_rate() {
        Some(rate) if rate > 0.0 => {}
        other => failures.push(format!("plan-cache hit rate not positive: {other:?}")),
    }
    if !snap.clients.iter().any(|c| c.bytes_in > 0 && c.bytes_out > 0) {
        failures.push("no client with non-zero byte counters".to_string());
    }
    // Connection-plane panel: the pool size is set at startup and every
    // request above has been dispatched (sync round-tripped), so both
    // figures must be live in the same QueryServerStats wire format.
    if snap.server.gauge("conn_plane_workers").unwrap_or(0) == 0 {
        failures.push("connection plane reports zero I/O workers".to_string());
    }
    let (fast, slow) = snap.dispatch_split();
    if fast + slow == 0 {
        failures.push("no dispatches counted on either path".to_string());
    }
    // Shared-store panel: the system catalogue is interned at startup
    // and the replayed catalogue sound must have hit the transcode cache.
    if snap.server.gauge("store_payloads").unwrap_or(0) == 0 {
        failures.push("shared store reports zero interned payloads".to_string());
    }
    match snap.transcode_hit_rate() {
        Some(rate) if rate > 0.0 => {}
        other => failures.push(format!("transcode hit rate not positive: {other:?}")),
    }
    server.shutdown();
    for f in &failures {
        eprintln!("audiostat: FAIL: {f}");
    }
    failures.is_empty()
}
