//! Example-applications crate; the binaries live at the directory root.
