//! A narrated slide show (paper §1.2, §5.7).
//!
//! "Stored voice can be used more formally as an essential component of
//! multi-media presentations"; §5.7's example application "displaying a
//! set of images while playing a stored digital sound track ... monitors
//! the audio server synchronization events on the sound track, and uses
//! them to time the update of the display." The display here is the
//! terminal; the mechanism is exactly the paper's.
//!
//! Run with `cargo run -p da-examples --bin slideshow`.

use da_alib::Connection;
use da_proto::event::Event;
use da_server::{AudioServer, ServerConfig};
use da_toolkit::builders::PlayLoud;
use da_toolkit::soundviewer::Soundviewer;
use da_toolkit::sounds::SoundHandle;
use std::time::Duration;

const SLIDES: [&str; 4] = [
    "[slide 1] desktop audio: a unified view",
    "[slide 2] the client-server model",
    "[slide 3] LOUDs, wires and command queues",
    "[slide 4] seamless real-time playback",
];

fn main() {
    let server = AudioServer::start(ServerConfig::default()).expect("start server");
    let mut conn = Connection::establish(server.connect_pipe(), "slideshow").expect("connect");

    // The narration track: one synthesized sentence per slide, recorded
    // into a single sound with slide boundaries noted in frames.
    let tts = da_synth::tts::Synthesizer::new(8000);
    let narration = [
        "welcome to desktop audio",
        "a single server shares the hardware among many applications",
        "virtual devices are wired into logical audio devices",
        "command queues keep playback seamless",
    ];
    let mut track: Vec<i16> = Vec::new();
    let mut boundaries = Vec::new();
    for text in narration {
        boundaries.push(track.len() as u64);
        track.extend(tts.speak(text));
        track.extend(std::iter::repeat_n(0i16, 2000)); // a beat between slides
    }
    let total = track.len() as u64;
    let sound = SoundHandle::from_pcm(&mut conn, 8000, &track).expect("upload");
    println!(
        "narration: {:.1} s, slide boundaries at {:?} frames\n",
        total as f64 / 8000.0,
        boundaries
    );

    let play = PlayLoud::build(&mut conn, vec![]).expect("play loud");
    let mut viewer = Soundviewer::new(play.player, total, 8000);
    let mut current = usize::MAX;

    play.play(&mut conn, sound.id).expect("play");
    loop {
        match conn.next_event(Duration::from_secs(15)).expect("event") {
            Some(Event::SyncMark { position, .. }) => {
                viewer.handle_event(&Event::SyncMark {
                    vdev: play.player,
                    sound: Some(sound.id),
                    position,
                    device_time: 0,
                });
                // The display slaves to the audio position.
                let slide = boundaries.iter().take_while(|&&b| b <= position).count() - 1;
                if slide != current {
                    current = slide;
                    println!("{}", SLIDES[slide]);
                }
                println!("  {}", viewer.render_ascii(44));
            }
            Some(Event::CommandDone { .. }) => break,
            Some(_) => {}
            None => break,
        }
    }
    println!("\npresentation complete ({} sync marks)", viewer.marks_seen);
    server.shutdown();
}
