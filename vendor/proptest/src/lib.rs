//! Minimal vendored property-testing harness exposing the subset of the
//! `proptest` API this workspace uses. The build container has no network
//! access, so external crates are shimmed as path dependencies.
//!
//! Differences from real proptest: no shrinking, no failure persistence,
//! a fixed deterministic seed per test (derived from file/line), and a
//! simplified regex subset for string strategies (`[class]{m,n}`,
//! `.{m,n}`, literals).

use std::rc::Rc;

/// Deterministic xorshift generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a nonzero seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed | 1 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A failed property case.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure with a reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

/// Result of one property case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Number of cases each property runs.
pub const CASES: u32 = 96;

/// Runs `body` for [`CASES`] deterministic cases, panicking with the case
/// index on the first failure. Used by the [`proptest!`] macro.
pub fn run_proptest<F>(file: &str, line: u32, mut body: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    // Deterministic per-test seed so failures reproduce run to run.
    let mut seed = 0xcbf29ce484222325u64;
    for b in file.bytes() {
        seed = (seed ^ b as u64).wrapping_mul(0x100000001b3);
    }
    seed = (seed ^ line as u64).wrapping_mul(0x100000001b3);
    for case in 0..CASES {
        let mut rng = TestRng::new(seed.wrapping_add((case as u64).wrapping_mul(0x9E3779B97F4A7C15)));
        if let Err(TestCaseError(reason)) = body(&mut rng) {
            panic!("proptest case {case}/{CASES} failed at {file}:{line}: {reason}");
        }
    }
}

/// A generation strategy for values of type `Value`.
pub trait Strategy: Clone + Sized + 'static {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Arb<O>
    where
        F: Fn(Self::Value) -> O + 'static,
    {
        Arb::new(move |rng| f(self.generate(rng)))
    }

    /// Type-erases the strategy.
    fn boxed(self) -> Arb<Self::Value> {
        Arb::new(move |rng| self.generate(rng))
    }

    /// Builds recursive values: `f` receives a strategy for the inner
    /// level and returns the composite level, nested up to `depth` deep.
    fn prop_recursive<S, F>(self, depth: u32, _size: u32, _branch: u32, f: F) -> Arb<Self::Value>
    where
        S: Strategy<Value = Self::Value>,
        F: Fn(Arb<Self::Value>) -> S,
    {
        let leaf = self.clone().boxed();
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = f(strat).boxed();
        }
        Arb::new(move |rng| {
            if rng.below(4) == 0 {
                leaf.generate(rng)
            } else {
                strat.generate(rng)
            }
        })
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct Arb<T> {
    gen_fn: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Arb<T> {
    /// Wraps a generation closure.
    pub fn new<F: Fn(&mut TestRng) -> T + 'static>(f: F) -> Self {
        Arb { gen_fn: Rc::new(f) }
    }
}

impl<T> Clone for Arb<T> {
    fn clone(&self) -> Self {
        Arb { gen_fn: Rc::clone(&self.gen_fn) }
    }
}

impl<T: 'static> Strategy for Arb<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen_fn)(rng)
    }
}

/// Alias matching real proptest's boxed strategy name.
pub type BoxedStrategy<T> = Arb<T>;

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Printable ASCII keeps generated text valid everywhere.
        (0x20u8 + rng.below(0x5F) as u8) as char
    }
}

/// Strategy for any value of `T`.
#[derive(Debug)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy { _marker: std::marker::PhantomData }
    }
}

impl<T: Arbitrary + 'static> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary + 'static>() -> AnyStrategy<T> {
    AnyStrategy { _marker: std::marker::PhantomData }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + rng.below(span.saturating_add(1).max(1)) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// String strategies from a simplified regex subset: literals, `.`,
/// `[chars]` classes with `a-z` ranges, each optionally quantified with
/// `{m,n}` or `{m}`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a char class, a dot, or a literal.
        let class: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("unterminated [class] in pattern")
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        for c in lo..=hi {
                            set.push(char::from_u32(c).expect("ascii range"));
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            }
            '.' => {
                i += 1;
                (0x20u8..0x7F).map(|b| b as char).collect()
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional {m,n} / {m} quantifier.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated {quantifier} in pattern")
                + i;
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.parse::<usize>().expect("bad quantifier"),
                    n.parse::<usize>().expect("bad quantifier"),
                ),
                None => {
                    let m = spec.parse::<usize>().expect("bad quantifier");
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        let n = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..n {
            out.push(class[rng.below(class.len() as u64) as usize]);
        }
    }
    out
}

/// Collection strategies.
pub mod collection {
    use super::{Arb, Strategy, TestRng};

    /// Sizes accepted by [`vec`].
    pub trait IntoSizeRange {
        /// Resolves to inclusive `(min, max)` lengths.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for vectors of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> Arb<Vec<S::Value>>
    where
        S::Value: 'static,
    {
        let (lo, hi) = size.bounds();
        Arb::new(move |rng: &mut TestRng| {
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..n).map(|_| element.generate(rng)).collect()
        })
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{Arb, TestRng};

    /// Strategy choosing uniformly from `options` (must be non-empty).
    pub fn select<T: Clone + 'static>(options: Vec<T>) -> Arb<T> {
        assert!(!options.is_empty(), "select from empty options");
        Arb::new(move |rng: &mut TestRng| {
            options[rng.below(options.len() as u64) as usize].clone()
        })
    }
}

/// Option strategies.
pub mod option {
    use super::{Arb, Strategy, TestRng};

    /// Strategy producing `None` about a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> Arb<Option<S::Value>>
    where
        S::Value: 'static,
    {
        Arb::new(move |rng: &mut TestRng| {
            if rng.below(4) == 0 {
                None
            } else {
                Some(inner.generate(rng))
            }
        })
    }
}

/// Chooses one strategy from weighted or unweighted alternatives.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {{
        let arms = vec![$(($weight as u64, $crate::Strategy::boxed($strat))),+];
        let total: u64 = arms.iter().map(|(w, _)| *w).sum();
        $crate::Arb::new(move |rng: &mut $crate::TestRng| {
            let mut pick = rng.below(total.max(1));
            for (w, strat) in &arms {
                if pick < *w {
                    return $crate::Strategy::generate(strat, rng);
                }
                pick -= *w;
            }
            $crate::Strategy::generate(&arms[0].1, rng)
        })
    }};
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof!($(1 => $strat),+)
    };
}

/// Asserts a condition inside a property, failing the case (not the
/// process) so the harness can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes
/// a `#[test]` running [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($(#[$meta:meta] fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[$meta]
            fn $name() {
                $crate::run_proptest(file!(), line!(), |rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
}

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arb, Arbitrary, BoxedStrategy,
        Just, Strategy, TestCaseError, TestCaseResult,
    };

    /// Module-path mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u32, String)> {
        (any::<u32>(), "[a-z ]{0,20}").prop_map(|(n, s)| (n % 100, s))
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 10u32..20, y in -5i16..=5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(any::<u8>(), 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
        }

        #[test]
        fn oneof_and_select(x in prop_oneof![Just(1u8), Just(2), Just(3)],
                            y in prop::sample::select(vec![10u8, 20, 30])) {
            prop_assert!([1, 2, 3].contains(&x));
            prop_assert_eq!(y % 10, 0);
        }

        #[test]
        fn mapped_pairs(p in arb_pair()) {
            prop_assert!(p.0 < 100);
            prop_assert!(p.1.len() <= 20);
            prop_assert!(p.1.chars().all(|c| c == ' ' || c.is_ascii_lowercase()));
        }

        #[test]
        fn option_of_covers_none(opts in prop::collection::vec(crate::option::of(any::<u8>()), 64)) {
            prop_assert!(opts.iter().any(|o| o.is_none()));
            prop_assert!(opts.iter().any(|o| o.is_some()));
        }
    }

    #[test]
    fn pattern_quantifiers() {
        let mut rng = crate::TestRng::new(42);
        for _ in 0..200 {
            let s = crate::generate_from_pattern("[0-9#*]{0,12}", &mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_digit() || c == '#' || c == '*'));
            let t = crate::generate_from_pattern("ab.{2}", &mut rng);
            assert_eq!(t.len(), 4);
            assert!(t.starts_with("ab"));
        }
    }

    #[test]
    fn recursion_terminates() {
        #[derive(Debug, Clone)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let strat = any::<u8>().prop_map(Tree::Leaf).boxed().prop_recursive(4, 64, 4, |inner| {
            prop::collection::vec(inner, 0..4).prop_map(Tree::Node)
        });
        let mut rng = crate::TestRng::new(7);
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(v) => 1 + v.iter().map(depth).max().unwrap_or(0),
            }
        }
        for _ in 0..100 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 6);
        }
    }
}
