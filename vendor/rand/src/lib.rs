//! Minimal vendored reimplementation of the `rand` 0.9 API surface used
//! by this workspace: [`rng()`] plus [`Rng::random_range`] over integer
//! ranges. Backed by a xorshift64* generator seeded from the clock and a
//! per-thread counter. The build container has no network access, so
//! external crates are shimmed as path dependencies.

use std::ops::{Range, RangeInclusive};

/// A fast non-cryptographic generator (xorshift64*).
#[derive(Debug, Clone)]
pub struct ThreadRng {
    state: u64,
}

/// Returns a generator seeded from the clock and a per-call counter.
pub fn rng() -> ThreadRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x9E3779B97F4A7C15);
    let salt = COUNTER.fetch_add(0x9E3779B97F4A7C15, Ordering::Relaxed);
    ThreadRng { state: (nanos ^ salt) | 1 }
}

impl ThreadRng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

/// Integer types samplable from a range.
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[lo, hi]` (inclusive).
    fn sample_inclusive(rng: &mut ThreadRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive(rng: &mut ThreadRng, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty sample range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample(self, rng: &mut ThreadRng) -> T;
}

impl<T: SampleUniform + PartialOrd + Bounded> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut ThreadRng) -> T {
        assert!(self.start < self.end, "empty sample range");
        T::sample_inclusive(rng, self.start, T::prev(self.end))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut ThreadRng) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Helper to turn an exclusive upper bound into an inclusive one.
pub trait Bounded {
    /// The value immediately below `self`.
    fn prev(self) -> Self;
}

macro_rules! impl_bounded {
    ($($t:ty),*) => {$(
        impl Bounded for $t {
            fn prev(self) -> Self {
                self - 1
            }
        }
    )*};
}

impl_bounded!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Random value generation methods.
pub trait Rng {
    /// Samples uniformly from `range`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>;

    /// Samples a random bool.
    fn random_bool(&mut self, p: f64) -> bool;
}

impl Rng for ThreadRng {
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v: u64 = r.random_range(40..=160);
            assert!((40..=160).contains(&v));
            let w: i32 = r.random_range(-5..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn generators_diverge() {
        let mut a = rng();
        let mut b = rng();
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0..=u64::MAX - 1)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0..=u64::MAX - 1)).collect();
        assert_ne!(va, vb);
    }
}
