//! Minimal vendored reimplementation of the `parking_lot` mutex API used
//! by this workspace, backed by `std::sync::Mutex` with poison recovery
//! (parking_lot mutexes do not poison). The build container has no
//! network access, so external crates are shimmed as path dependencies.

use std::ops::{Deref, DerefMut};
use std::sync;

#[cfg(feature = "deadlock_detect")]
mod order {
    //! Lock-order tracking (feature `deadlock_detect`).
    //!
    //! Every mutex gets a process-unique id on first acquisition. A
    //! global graph records the edge `held -> acquired` whenever a lock
    //! is taken while another is held; if adding an edge closes a cycle,
    //! two locks have been taken in inconsistent order somewhere in the
    //! process — a potential deadlock — and we panic immediately, on
    //! whichever thread completed the cycle, without waiting for the
    //! interleaving that actually deadlocks. The bookkeeping uses `std`
    //! primitives directly so it never recurses into itself.

    use std::cell::RefCell;
    use std::collections::{HashMap, HashSet};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex as StdMutex;

    static NEXT_ID: AtomicUsize = AtomicUsize::new(1);
    static EDGES: StdMutex<Option<HashMap<usize, HashSet<usize>>>> = StdMutex::new(None);

    thread_local! {
        static HELD: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
    }

    fn id_of(slot: &AtomicUsize) -> usize {
        let cur = slot.load(Ordering::Relaxed);
        if cur != 0 {
            return cur;
        }
        let fresh = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        match slot.compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => fresh,
            Err(raced) => raced,
        }
    }

    fn reaches(edges: &HashMap<usize, HashSet<usize>>, from: usize, to: usize) -> bool {
        let mut stack = vec![from];
        let mut seen = HashSet::new();
        while let Some(v) = stack.pop() {
            if v == to {
                return true;
            }
            if seen.insert(v) {
                stack.extend(edges.get(&v).into_iter().flatten());
            }
        }
        false
    }

    /// Called before acquiring; records order edges and panics on an
    /// inversion. Returns the lock's id for the guard to release.
    pub(crate) fn on_acquire(slot: &AtomicUsize) -> usize {
        let id = id_of(slot);
        let held: Vec<usize> = HELD.with(|h| h.borrow().clone());
        if !held.is_empty() {
            let mut g = EDGES.lock().unwrap_or_else(|p| p.into_inner());
            let edges = g.get_or_insert_with(HashMap::new);
            let mut inverted = None;
            for &h in &held {
                if h == id {
                    inverted = Some(h);
                    break;
                }
                if reaches(edges, id, h) {
                    inverted = Some(h);
                    break;
                }
                edges.entry(h).or_default().insert(id);
            }
            // Release the registry before panicking so other threads'
            // bookkeeping survives the unwind.
            drop(g);
            if let Some(h) = inverted {
                panic!(
                    "lock order inversion: acquiring lock #{id} while holding lock #{h} \
                     contradicts a previously observed acquisition order"
                );
            }
        }
        HELD.with(|h| h.borrow_mut().push(id));
        id
    }

    /// Called when a guard drops.
    pub(crate) fn on_release(id: usize) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&x| x == id) {
                held.remove(pos);
            }
        });
    }
}

/// A mutex that never poisons: a panic while holding the lock leaves the
/// data accessible to later lockers, matching parking_lot semantics.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "deadlock_detect")]
    order_id: std::sync::atomic::AtomicUsize,
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            #[cfg(feature = "deadlock_detect")]
            order_id: std::sync::atomic::AtomicUsize::new(0),
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "deadlock_detect")]
        let order_id = order::on_acquire(&self.order_id);
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard {
            guard,
            #[cfg(feature = "deadlock_detect")]
            order_id,
        }
    }

    /// Acquires the lock if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let guard = match self.inner.try_lock() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        // A successful try_lock participates in order tracking like any
        // acquisition (it cannot deadlock itself, but it can hold while
        // something else acquires).
        #[cfg(feature = "deadlock_detect")]
        let order_id = order::on_acquire(&self.order_id);
        Some(MutexGuard {
            guard,
            #[cfg(feature = "deadlock_detect")]
            order_id,
        })
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock that never poisons, matching parking_lot
/// semantics. Backed by `std::sync::RwLock` (on Linux a futex
/// implementation that blocks new readers once a writer waits, so a
/// stream of readers cannot starve the writer — the property the
/// server's dispatch fast path relies on).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    #[cfg(feature = "deadlock_detect")]
    order_id: std::sync::atomic::AtomicUsize,
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a reader-writer lock guarding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            #[cfg(feature = "deadlock_detect")]
            order_id: std::sync::atomic::AtomicUsize::new(0),
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "deadlock_detect")]
        let order_id = order::on_acquire(&self.order_id);
        let guard = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard {
            guard,
            #[cfg(feature = "deadlock_detect")]
            order_id,
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "deadlock_detect")]
        let order_id = order::on_acquire(&self.order_id);
        let guard = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard {
            guard,
            #[cfg(feature = "deadlock_detect")]
            order_id,
        }
    }

    /// Acquires read access if no writer holds or waits for the lock.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let guard = match self.inner.try_read() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        #[cfg(feature = "deadlock_detect")]
        let order_id = order::on_acquire(&self.order_id);
        Some(RwLockReadGuard {
            guard,
            #[cfg(feature = "deadlock_detect")]
            order_id,
        })
    }

    /// Acquires write access if the lock is entirely free right now.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let guard = match self.inner.try_write() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        #[cfg(feature = "deadlock_detect")]
        let order_id = order::on_acquire(&self.order_id);
        Some(RwLockWriteGuard {
            guard,
            #[cfg(feature = "deadlock_detect")]
            order_id,
        })
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// Shared RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: sync::RwLockReadGuard<'a, T>,
    #[cfg(feature = "deadlock_detect")]
    order_id: usize,
}

#[cfg(feature = "deadlock_detect")]
impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        order::on_release(self.order_id);
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

/// Exclusive RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: sync::RwLockWriteGuard<'a, T>,
    #[cfg(feature = "deadlock_detect")]
    order_id: usize,
}

#[cfg(feature = "deadlock_detect")]
impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        order::on_release(self.order_id);
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    guard: sync::MutexGuard<'a, T>,
    #[cfg(feature = "deadlock_detect")]
    order_id: usize,
}

#[cfg(feature = "deadlock_detect")]
impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        order::on_release(self.order_id);
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 2);
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert!(l.try_write().is_some());
        let _r = l.read();
        assert!(l.try_write().is_none());
        assert!(l.try_read().is_some());
    }

    #[test]
    fn rwlock_no_poisoning_after_panic() {
        let l = Arc::new(RwLock::new(7));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*l.read(), 7);
        assert_eq!(*l.write(), 7);
    }

    #[test]
    fn rwlock_writer_sees_reader_updates() {
        // Many readers and one writer agree on the final count.
        let l = Arc::new(RwLock::new(0u64));
        let mut joins = Vec::new();
        for _ in 0..4 {
            let l = Arc::clone(&l);
            joins.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    *l.write() += 1;
                }
            }));
        }
        for j in joins {
            j.join().expect("writer thread");
        }
        assert_eq!(*l.read(), 400);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[cfg(feature = "deadlock_detect")]
    mod deadlock_detect {
        use super::*;
        use std::panic::{catch_unwind, AssertUnwindSafe};

        #[test]
        fn consistent_order_is_silent() {
            let a = Mutex::new(1);
            let b = Mutex::new(2);
            for _ in 0..3 {
                let ga = a.lock();
                let gb = b.lock();
                assert_eq!(*ga + *gb, 3);
            }
        }

        #[test]
        fn inverted_order_panics() {
            let a = Mutex::new(1);
            let b = Mutex::new(2);
            {
                let _ga = a.lock();
                let _gb = b.lock();
            }
            // The opposite order contradicts the recorded a -> b edge.
            let r = catch_unwind(AssertUnwindSafe(|| {
                let _gb = b.lock();
                let _ga = a.lock();
            }));
            let msg = *r.expect_err("inversion must panic").downcast::<String>().unwrap();
            assert!(msg.contains("lock order inversion"), "{msg}");
        }

        #[test]
        fn reentrant_lock_panics_instead_of_deadlocking() {
            let a = Mutex::new(1);
            let g = a.lock();
            let r = catch_unwind(AssertUnwindSafe(|| {
                let _again = a.lock();
            }));
            drop(g);
            assert!(r.is_err());
        }

        #[test]
        fn guard_drop_releases_for_ordering() {
            let a = Mutex::new(1);
            let b = Mutex::new(2);
            {
                let _ga = a.lock();
            }
            // `a` is no longer held: taking b then a creates no edge
            // conflict with any still-held lock.
            let _gb = b.lock();
            drop(_gb);
            let _ga = a.lock();
        }
    }
}
