//! Minimal vendored reimplementation of the `parking_lot` mutex API used
//! by this workspace, backed by `std::sync::Mutex` with poison recovery
//! (parking_lot mutexes do not poison). The build container has no
//! network access, so external crates are shimmed as path dependencies.

use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutex that never poisons: a panic while holding the lock leaves the
/// data accessible to later lockers, matching parking_lot semantics.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => MutexGuard { guard: g },
            Err(p) => MutexGuard { guard: p.into_inner() },
        }
    }

    /// Acquires the lock if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard { guard: p.into_inner() }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    guard: sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
