//! Minimal vendored benchmark harness exposing the subset of the
//! `criterion` API this workspace uses. The build container has no
//! network access, so external crates are shimmed as path dependencies.
//!
//! Measurement model: each benchmark warms up briefly, then runs timed
//! batches until the measurement budget elapses and reports the mean
//! time per iteration to stdout. When invoked by `cargo test` (any
//! `--test`-like argument present), each benchmark runs a single
//! iteration as a smoke test so test runs stay fast.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units of work per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Function name plus parameter.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId { name: format!("{name}/{param}") }
    }

    /// Parameter-only id (group supplies the function name).
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId { name: param.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { name: name.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    test_mode: bool,
    budget: Duration,
    /// Mean seconds per iteration measured by the last `iter` call.
    mean_secs: f64,
    iterations: u64,
}

impl Bencher {
    /// Times `f` repeatedly within the measurement budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.mean_secs = 0.0;
            self.iterations = 1;
            return;
        }
        // Warm-up and batch-size calibration: aim for batches of >= 1ms.
        let mut batch = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t.elapsed();
            if dt >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 8;
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.budget {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            black_box(t.elapsed());
            iters += batch;
        }
        let total = start.elapsed();
        self.iterations = iters.max(1);
        self.mean_secs = total.as_secs_f64() / self.iterations as f64;
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// The benchmark manager.
pub struct Criterion {
    test_mode: bool,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test" || a == "--list");
        Criterion { test_mode, measurement: Duration::from_millis(300) }
    }
}

impl Criterion {
    fn run_one(
        &self,
        name: &str,
        throughput: Option<Throughput>,
        budget: Duration,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        let mut b = Bencher {
            test_mode: self.test_mode,
            budget,
            mean_secs: 0.0,
            iterations: 0,
        };
        f(&mut b);
        if self.test_mode {
            println!("test {name} ... ok (1 iteration)");
            return;
        }
        let mut line = format!("{name:<48} time: {}", format_time(b.mean_secs));
        if let Some(t) = throughput {
            let per_sec = |units: u64| units as f64 / b.mean_secs.max(1e-12);
            match t {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  thrpt: {:.3} Melem/s", per_sec(n) / 1e6));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!("  thrpt: {:.3} MiB/s", per_sec(n) / (1 << 20) as f64));
                }
            }
        }
        println!("{line}");
    }

    /// Runs one named benchmark.
    pub fn bench_function(
        &mut self,
        name: &str,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let budget = self.measurement;
        self.run_one(name, None, budget, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            measurement: None,
        }
    }
}

/// A group of related benchmarks sharing throughput/measurement config.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    measurement: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Sets the units of work per iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        // Cap so full bench runs stay interactive with many benchmarks.
        self.measurement = Some(d.min(Duration::from_secs(2)));
        self
    }

    /// Sets the warm-up time (calibration is automatic; accepted for API
    /// compatibility).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the sample count (accepted for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let name = format!("{}/{}", self.name, id.name);
        let budget = self.measurement.unwrap_or(self.criterion.measurement);
        self.criterion.run_one(&name, self.throughput, budget, &mut f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion { test_mode: false, measurement: Duration::from_millis(20) };
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("group");
        g.throughput(Throughput::Elements(100));
        g.measurement_time(Duration::from_millis(20));
        g.bench_with_input(BenchmarkId::from_parameter(8), &8u32, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion { test_mode: true, measurement: Duration::from_secs(60) };
        let mut runs = 0;
        c.bench_function("counted", |b| {
            b.iter(|| runs += 1);
        });
        assert_eq!(runs, 1);
    }
}
