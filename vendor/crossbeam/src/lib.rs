//! Minimal vendored reimplementation of the `crossbeam::channel` API
//! surface used by this workspace, backed by `std::sync::mpsc`. The
//! build container has no network access, so external crates are shimmed
//! as path dependencies.

/// Multi-producer channels with bounded and unbounded flavours.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned when the receiving side has disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by a non-blocking send.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded channel is full; the message is handed back.
        Full(T),
        /// The receiving side has disconnected.
        Disconnected(T),
    }

    impl<T> std::fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
            }
        }
    }

    /// Error returned when all senders have disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Outcome of a timed receive.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// All senders disconnected and the channel is drained.
        Disconnected,
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => write!(f, "channel disconnected"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    enum Tx<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
                Tx::Bounded(s) => Tx::Bounded(s.clone()),
            }
        }
    }

    /// Sending half of a channel.
    pub struct Sender<T> {
        tx: Tx<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { tx: self.tx.clone() }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.tx {
                Tx::Unbounded(s) => s.send(msg).map_err(|e| SendError(e.0)),
                Tx::Bounded(s) => s.send(msg).map_err(|e| SendError(e.0)),
            }
        }

        /// Sends without blocking: a full bounded channel hands the
        /// message back as [`TrySendError::Full`] (an unbounded channel
        /// never is).
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            match &self.tx {
                Tx::Unbounded(s) => s.send(msg).map_err(|e| TrySendError::Disconnected(e.0)),
                Tx::Bounded(s) => s.try_send(msg).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T> {
        rx: mpsc::Receiver<T>,
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.rx.recv().map_err(|_| RecvError)
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.rx.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Returns a message if one is already queued.
        pub fn try_recv(&self) -> Result<T, RecvTimeoutError> {
            self.rx.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => RecvTimeoutError::Timeout,
                mpsc::TryRecvError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { tx: Tx::Unbounded(tx) }, Receiver { rx })
    }

    /// Creates a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { tx: Tx::Bounded(tx) }, Receiver { rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(41).unwrap();
        tx.clone().send(42).unwrap();
        assert_eq!(rx.recv(), Ok(41));
        assert_eq!(rx.recv_timeout(Duration::from_millis(50)), Ok(42));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn bounded_disconnect() {
        let (tx, rx) = bounded(2);
        tx.send(1u8).unwrap();
        drop(rx);
        assert!(tx.send(2).is_err());
    }

    #[test]
    fn try_send_reports_full_and_disconnected() {
        let (tx, rx) = bounded(1);
        assert_eq!(tx.try_send(1u8), Ok(()));
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(tx.try_send(3), Ok(()));
        drop(rx);
        assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
    }
}
