//! Minimal vendored reimplementation of the parts of the `bytes` crate
//! this workspace uses. The container building this repository has no
//! network access and no registry cache, so external crates are shimmed
//! as path dependencies with API-compatible subsets.
//!
//! Covered surface: [`Bytes`], [`BytesMut`], and the [`Buf`]/[`BufMut`]
//! traits with the little-endian `put_*` writers used by the protocol
//! codec.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Wraps a static byte slice.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes { data: Arc::from(data) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len()
    }
    fn chunk(&self) -> &[u8] {
        &self.data
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.data.len(), "advance past end of Bytes");
        self.data = Arc::from(&self.data[cnt..]);
    }
}

/// Growable byte buffer with an amortised-O(1) front cursor.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    /// Index of the first live byte; bytes before it have been consumed
    /// by `advance`/`split_to` and are reclaimed lazily.
    start: usize,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new(), start: 0 }
    }

    /// Creates an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap), start: 0 }
    }

    /// Length of the live region.
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// Whether the live region is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends bytes to the back of the buffer.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.compact_if_large();
        self.data.extend_from_slice(src);
    }

    /// Splits off and returns the first `at` live bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to past end of BytesMut");
        let head = self.data[self.start..self.start + at].to_vec();
        self.start += at;
        self.compact_if_large();
        BytesMut { data: head, start: 0 }
    }

    /// Converts the live region into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        if self.start == 0 {
            Bytes::from(self.data)
        } else {
            Bytes::from(&self.data[self.start..])
        }
    }

    fn compact_if_large(&mut self) {
        // Reclaim consumed space once it dominates the allocation.
        if self.start > 4096 && self.start * 2 > self.data.len() {
            self.data.drain(..self.start);
            self.start = 0;
        }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        BytesMut { data: v.to_vec(), start: 0 }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..]
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data[self.start..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&Bytes::from(&self[..]), f)
    }
}

/// Read cursor over a byte buffer.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The next contiguous chunk.
    fn chunk(&self) -> &[u8];
    /// Consumes `cnt` bytes from the front.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_le_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of BytesMut");
        self.start += cnt;
        self.compact_if_large();
    }
}

/// Write cursor appending to a byte buffer.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `i16`.
    fn put_i16_le(&mut self, v: i16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytesmut_roundtrip() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32_le(7);
        b.put_u8(0xAA);
        b.extend_from_slice(b"hello");
        assert_eq!(b.len(), 10);
        assert_eq!(u32::from_le_bytes([b[0], b[1], b[2], b[3]]), 7);
        b.advance(4);
        assert_eq!(b[0], 0xAA);
        b.advance(1);
        let head = b.split_to(5).freeze();
        assert_eq!(head.as_ref(), b"hello");
        assert!(b.is_empty());
    }

    #[test]
    fn bytes_equality_and_clone() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::from(b"abc".to_vec());
        assert_eq!(a, b);
        let c = a.clone();
        assert_eq!(c.len(), 3);
        assert_eq!(&*c, b"abc");
    }

    #[test]
    fn compaction_preserves_content() {
        let mut b = BytesMut::new();
        b.extend_from_slice(&vec![1u8; 10000]);
        b.advance(9000);
        b.extend_from_slice(&[2u8; 8]);
        assert_eq!(b.len(), 1008);
        assert_eq!(b[1000], 2);
    }
}
